"""Trace replay and engine-invariant checking.

The :class:`InvariantChecker` replays a recorded trace (a list of event
dicts, straight from a :class:`~repro.obs.tracer.Tracer` or loaded back
from JSONL) and asserts the engine invariants that every correct run
must satisfy, whatever the workload:

* **Clock monotonicity** -- virtual timestamps never go backwards.
* **Packet lifecycle** -- every packet is created exactly once before
  any other event; dispatch requires a prior enqueue; a packet never
  both runs standalone and attaches as a satellite; nothing happens to
  a packet after it completed; and no packet completes unattached (no
  prior dispatch or attach) or completes twice.  A ``packet.detach``
  (a satellite whose host died, re-executed privately) resets the
  enqueue/dispatch/attach state: the packet may legally enqueue,
  dispatch, or re-attach afterwards.
* **Abort discipline** -- a query aborts at most once, and a packet is
  cancelled at most once.
* **No orphaned satellites** -- every attach is eventually closed out
  by a completion, a cancellation, or a detach; no satellite is left
  dangling on a dead host at end of trace.
* **Lock balance** -- per (owner, resource) pair, releases never exceed
  acquires and every grant is released by end of trace.
* **WoP bounds** -- every satellite attach carries the evidence its
  window-of-opportunity test was based on, and that evidence must
  actually satisfy the operator's sharing rule: a *generic* attach needs
  a host with no output yet or a full replay ring, a *sort re-emission*
  needs a materialised result, and a *merge-join split* must save more
  pages than the second pass of the non-shared relation costs.
* **Pin balance** -- buffer pool pins and unpins pair up per page, the
  count never goes negative, and nothing stays pinned at end of trace;
  a pinned page is never evicted.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple


class InvariantViolation(AssertionError):
    """A trace violated an engine invariant; ``violations`` lists them."""

    def __init__(self, violations: List[str]):
        self.violations = violations
        preview = "\n  ".join(violations[:10])
        more = (
            f"\n  ... and {len(violations) - 10} more"
            if len(violations) > 10
            else ""
        )
        super().__init__(
            f"{len(violations)} invariant violation(s):\n  {preview}{more}"
        )


class InvariantChecker:
    """Replays one trace and collects every invariant violation."""

    def __init__(self, events: Iterable[Dict[str, Any]]):
        self.events = list(events)
        self.violations: List[str] = []

    # ------------------------------------------------------------------
    def check(self) -> List[str]:
        """Run every invariant; returns (and stores) the violation list."""
        self.violations = []
        self._check_monotonic_clock()
        self._check_packet_lifecycles()
        self._check_attach_windows()
        self._check_pin_balance()
        self._check_lock_balance()
        self._check_aborts()
        self._check_orphan_satellites()
        return self.violations

    def assert_ok(self) -> None:
        """Raise :class:`InvariantViolation` when any invariant fails."""
        if self.check():
            raise InvariantViolation(self.violations)

    @property
    def ok(self) -> bool:
        return not self.check()

    def _flag(self, message: str) -> None:
        self.violations.append(message)

    # ------------------------------------------------------------------
    def _check_monotonic_clock(self) -> None:
        last = None
        for i, event in enumerate(self.events):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                self._flag(f"event #{i} has no numeric ts: {event!r}")
                continue
            if last is not None and ts < last:
                self._flag(
                    f"clock went backwards at event #{i}: "
                    f"{ts} < {last} ({event.get('type')})"
                )
            last = ts

    # ------------------------------------------------------------------
    def _check_packet_lifecycles(self) -> None:
        created: set = set()
        enqueued: set = set()
        dispatched: set = set()
        attached: set = set()
        completed: set = set()
        cancelled: set = set()
        for event in self.events:
            etype = event.get("type", "")
            if not etype.startswith("packet."):
                continue
            kind = etype.split(".", 1)[1]
            pid = event.get("packet")
            if pid is None:
                self._flag(f"{etype} event without a packet id: {event!r}")
                continue
            if kind != "create" and pid not in created:
                self._flag(f"{etype} for {pid} before packet.create")
            if pid in completed and kind != "create":
                self._flag(f"{etype} for {pid} after packet.complete")
            if kind == "create":
                if pid in created:
                    self._flag(f"packet {pid} created twice")
                created.add(pid)
            elif kind == "enqueue":
                if pid in enqueued:
                    self._flag(f"packet {pid} enqueued twice")
                enqueued.add(pid)
            elif kind == "dispatch":
                if pid not in enqueued:
                    self._flag(f"packet {pid} dispatched without enqueue")
                if pid in dispatched:
                    self._flag(f"packet {pid} dispatched twice")
                if pid in attached:
                    self._flag(
                        f"packet {pid} dispatched after attaching as satellite"
                    )
                dispatched.add(pid)
            elif kind == "attach":
                if pid in dispatched:
                    self._flag(
                        f"packet {pid} attached as satellite after dispatch"
                    )
                if pid in attached:
                    self._flag(f"packet {pid} attached twice")
                attached.add(pid)
            elif kind == "detach":
                if pid not in attached:
                    self._flag(f"packet {pid} detached without attach")
                # Host-death redispatch: the packet re-enters the queue as
                # if freshly created -- a later enqueue/dispatch (or even
                # a new attach to a different host) is legal again.
                enqueued.discard(pid)
                dispatched.discard(pid)
                attached.discard(pid)
                cancelled.discard(pid)
            elif kind == "complete":
                if pid in completed:
                    self._flag(f"packet {pid} completed twice")
                elif pid not in dispatched and pid not in attached:
                    self._flag(
                        f"packet {pid} completed without dispatch or attach"
                    )
                completed.add(pid)
            elif kind == "cancel":
                cancelled.add(pid)

    # ------------------------------------------------------------------
    def _check_attach_windows(self) -> None:
        for event in self.events:
            if event.get("type") != "packet.attach":
                continue
            pid = event.get("packet")
            mechanism = event.get("mechanism")
            if mechanism == "generic":
                host_tuples = event.get("host_tuples", 0)
                can_replay = event.get("can_replay", False)
                if host_tuples != 0 and not can_replay:
                    self._flag(
                        f"generic attach of {pid} outside the WoP: host had "
                        f"produced {host_tuples} tuples with replay exhausted"
                    )
            elif mechanism == "sort-reemit":
                if not event.get("materialized", False):
                    self._flag(
                        f"sort re-emission attach of {pid} without a "
                        f"materialised result"
                    )
            elif mechanism in ("fold-scan", "fold-agg"):
                host_pages = event.get("host_pages", 0)
                subsumed = event.get("subsumed", False)
                ring_ok = event.get("ring_ok", False)
                if host_pages != 0 and not (subsumed and ring_ok):
                    self._flag(
                        f"fold attach of {pid} outside the WoP: joined at "
                        f"page {host_pages} without subsumption "
                        f"(subsumed={subsumed}) or an intact survivor ring "
                        f"(ring_ok={ring_ok})"
                    )
            elif mechanism == "mj-split":
                saved = event.get("saved", 0)
                extra = event.get("extra", 0)
                if saved <= extra:
                    self._flag(
                        f"merge-join split of {pid} against the cost model: "
                        f"saves {saved} pages but re-reads {extra}"
                    )
            else:
                self._flag(
                    f"attach of {pid} with unknown mechanism {mechanism!r}"
                )

    # ------------------------------------------------------------------
    def _check_pin_balance(self) -> None:
        pins: Dict[Tuple[Any, Any], int] = {}
        for event in self.events:
            etype = event.get("type", "")
            if not etype.startswith("pool."):
                continue
            key = (event.get("file"), event.get("block"))
            if etype == "pool.pin":
                pins[key] = pins.get(key, 0) + 1
            elif etype == "pool.unpin":
                count = pins.get(key, 0) - 1
                if count < 0:
                    self._flag(f"unpin of unpinned page {key}")
                    count = 0
                pins[key] = count
            elif etype == "pool.evict":
                if pins.get(key, 0) > 0:
                    self._flag(f"pinned page {key} was evicted")
        leaked = sorted(
            (key for key, count in pins.items() if count > 0),
            key=repr,
        )
        for key in leaked:
            self._flag(
                f"page {key} still pinned at end of trace "
                f"(count={pins[key]})"
            )

    # ------------------------------------------------------------------
    def _check_lock_balance(self) -> None:
        """Per (owner, resource): releases pair up with acquires, nothing
        stays granted at end of trace (aborted queries included)."""
        held: Dict[Tuple[Any, Any], int] = {}
        for event in self.events:
            etype = event.get("type", "")
            if not etype.startswith("lock."):
                continue
            key = (event.get("owner"), event.get("resource"))
            if etype == "lock.acquire":
                held[key] = held.get(key, 0) + 1
            elif etype == "lock.release":
                count = held.get(key, 0) - 1
                if count < 0:
                    self._flag(f"lock release without acquire for {key}")
                    count = 0
                held[key] = count
        for key in sorted(held, key=repr):
            if held[key] > 0:
                self._flag(
                    f"lock {key} still held at end of trace "
                    f"(count={held[key]})"
                )

    # ------------------------------------------------------------------
    def _check_aborts(self) -> None:
        """Exactly-once teardown: one abort per query, one cancel per
        packet (between detaches)."""
        aborted: set = set()
        cancelled: set = set()
        for event in self.events:
            etype = event.get("type", "")
            if etype == "query.abort":
                qid = event.get("query")
                if qid in aborted:
                    self._flag(f"query {qid} aborted twice")
                aborted.add(qid)
            elif etype == "packet.cancel":
                pid = event.get("packet")
                if pid in cancelled:
                    self._flag(f"packet {pid} cancelled twice")
                cancelled.add(pid)
            elif etype == "packet.detach":
                cancelled.discard(event.get("packet"))

    # ------------------------------------------------------------------
    def _check_orphan_satellites(self) -> None:
        """Every attach must be closed out -- by a completion, a
        cancellation, or a detach -- before the trace ends.  A satellite
        still open at the end is an orphan: its host died (or finished)
        without anyone resolving the satellite's fate."""
        open_attach: set = set()
        for event in self.events:
            etype = event.get("type", "")
            if etype == "packet.attach":
                open_attach.add(event.get("packet"))
            elif etype in (
                "packet.complete", "packet.cancel", "packet.detach"
            ):
                open_attach.discard(event.get("packet"))
        for pid in sorted(open_attach, key=repr):
            self._flag(f"satellite {pid} still attached at end of trace")
