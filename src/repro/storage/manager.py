"""The storage manager facade -- what BerkeleyDB is to the paper's QPipe.

Everything engines need from storage goes through here:

* DDL + bulk loading (untimed; datasets exist before the clock starts),
* timed page reads through the buffer pool,
* timed index traversals (root-to-leaf, then leaf chain),
* timed inserts/updates/deletes with index maintenance,
* temp files for sort runs and OSP materialisations,
* the table lock manager.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Generator, List, Optional, Sequence, Tuple

from repro.hw.host import Host
from repro.relational.schema import Schema
from repro.storage.btree import BPlusTree
from repro.storage.bufferpool import BufferPool
from repro.storage.catalog import Catalog, IndexInfo, TableInfo
from repro.storage.file import BlockStore, HeapFile
from repro.storage.locks import LockManager
from repro.storage.page import RID, Page, rows_per_page
from repro.storage.partition import PartitionInfo

#: Sort key for (key, rid) pairs: the key alone (see _build_index).
_pair_key = itemgetter(0)


class StorageManager:
    """One database instance on one simulated host.

    Args:
        host: the simulated machine (clock, disk, CPU).
        buffer_pages: buffer pool frames.
        policy: replacement policy name (``lru`` models BerkeleyDB,
            ``arc`` models DBMS X's stronger pool).
        index_order: B+tree node fanout.
    """

    def __init__(
        self,
        host: Host,
        buffer_pages: int = 256,
        policy: str = "lru",
        index_order: int = 64,
        use_scan_ring: bool = True,
        scan_window_shared: bool = False,
        scan_ring_fraction: float = 0.125,
    ):
        self.host = host
        self.sim = host.sim
        self.store = BlockStore()
        self.pool = BufferPool(
            sim=host.sim,
            disk=host.disk,
            store=self.store,
            capacity=buffer_pages,
            policy_name=policy,
            page_hit_cost=host.config.page_hit_cost,
            use_scan_ring=use_scan_ring,
            scan_window_shared=scan_window_shared,
            scan_ring_fraction=scan_ring_fraction,
        )
        self.catalog = Catalog()
        self.locks = LockManager(host.sim)
        self.index_order = index_order
        self._temp_count = 0

    # ------------------------------------------------------------------
    # DDL and loading (untimed: datasets pre-exist the measured run)
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Schema,
        clustered_on: Optional[Sequence[str]] = None,
        partitioning: Optional["PartitionInfo"] = None,
    ) -> TableInfo:
        heap = HeapFile(self.store, name, rows_per_page(schema.row_width))
        info = TableInfo(
            name=name,
            schema=schema,
            heap=heap,
            clustered_on=list(clustered_on) if clustered_on else None,
            partitioning=partitioning,
        )
        self.catalog.add_table(info)
        return info

    def load_table(self, name: str, rows: Sequence[tuple]) -> int:
        """Bulk-load rows (sorted on the clustering key when declared)."""
        info = self.catalog.table(name)
        if info.num_rows:
            raise ValueError(f"table {name!r} is already loaded")
        if info.clustered_on:
            key = self._key_fn(info.schema, info.clustered_on)
            rows = sorted(rows, key=key)
        count = info.heap.bulk_load(rows)
        # Any pre-existing indexes must be (re)built over the new data.
        for index in info.indexes.values():
            self._build_index(info, index)
        return count

    def create_index(
        self,
        table: str,
        columns: Sequence[str],
        name: Optional[str] = None,
        clustered: bool = False,
    ) -> IndexInfo:
        info = self.catalog.table(table)
        columns = list(columns)
        if name is None:
            name = f"{table}_{'_'.join(columns)}_idx"
        if name in info.indexes:
            raise ValueError(f"index {name!r} already exists on {table!r}")
        if clustered:
            if info.clustered_on != columns:
                raise ValueError(
                    f"clustered index on {columns} requires the table to be "
                    f"clustered on the same columns (is: {info.clustered_on})"
                )
        tree = BPlusTree(self.store, name, order=self.index_order)
        index = IndexInfo(
            name=name,
            table=table,
            key_columns=columns,
            tree=tree,
            clustered=clustered,
        )
        info.indexes[name] = index
        if info.num_rows:
            self._build_index(info, index)
        return index

    def _build_index(self, info: TableInfo, index: IndexInfo) -> None:
        key = self._key_fn(info.schema, index.key_columns)
        # Page-wise pair building (no per-row generator resume), then a
        # stable sort on the key alone: the heap iterates in ascending
        # RID order, so ties keep that order -- the same key-then-RID
        # ordering as sorting full (key, rid) tuples, without any of the
        # RID.__lt__ tie-break calls (index builds dominate bulk-load
        # host time).
        heap = info.heap
        pairs: List[Tuple[Any, RID]] = []
        for block_no in range(heap.num_pages):
            pairs += [
                (key(row), RID(block_no, slot))
                for slot, row in heap.page(block_no).items()
            ]
        pairs.sort(key=_pair_key)
        if index.tree.num_keys:
            # Rebuild from scratch (load after create_index).
            index.tree = BPlusTree(self.store, index.name, self.index_order)
            info.indexes[index.name] = index
        index.tree.bulk_build(iter(pairs))

    @staticmethod
    def _key_fn(schema: Schema, columns: Sequence[str]):
        # itemgetter matches the old lambdas value for value: one index
        # yields the bare column, several yield the tuple.
        idxs = [schema.index_of(c) for c in columns]
        return itemgetter(*idxs)

    # ------------------------------------------------------------------
    # Timed reads
    # ------------------------------------------------------------------
    def read_table_page(
        self, table: str, block_no: int, pin: bool = False,
        scan: bool = False, stream: Any = None,
    ) -> Generator:
        """Coroutine: one heap page of *table* (returns the Page).

        ``scan=True`` flags a sequential-scan read; ``stream`` names the
        scan so its pages live in a private ring (see BufferPool).
        """
        heap = self.catalog.table(table).heap
        page = yield from self.pool.get_page(
            heap.file_id, block_no, pin=pin, cold=scan, stream=stream
        )
        return page

    def fetch_row(self, table: str, rid: RID) -> Generator:
        """Coroutine: one row by RID (reads its page through the pool)."""
        page = yield from self.read_table_page(table, rid.block_no)
        row = page.get(rid.slot)
        if row is None:
            raise KeyError(f"{rid} is a tombstone in {table}")
        return row

    def index_range(
        self,
        table: str,
        index: str,
        lo: Any = None,
        hi: Any = None,
        lo_open: bool = False,
        hi_open: bool = False,
    ) -> Generator:
        """Coroutine: all (key, RID) pairs in the range, in key order.

        This is the paper's unclustered-scan *phase one*: probe the index
        and build the full matching RID list (a full-overlap operation).
        Charges one buffer-pool access per node on the root-to-leaf path
        and per leaf visited.
        """
        info = self.catalog.index(table, index)
        tree = info.tree
        # Root-to-leaf descent.
        block = tree.root_block
        node = yield from self.pool.get_page(tree.file_id, block)
        while not node["leaf"]:
            block = (
                tree.child_for(node, lo)
                if lo is not None
                else tree.leftmost_child(node)
            )
            node = yield from self.pool.get_page(tree.file_id, block)
        # Leaf chain walk.
        results: List[Tuple[Any, RID]] = []
        while True:
            for key, values in zip(node["keys"], node["vals"]):
                if lo is not None and (key < lo or (lo_open and key == lo)):
                    continue
                if hi is not None and (key > hi or (hi_open and key == hi)):
                    return results
                results.extend((key, value) for value in values)
            nxt = node["next"]
            if nxt < 0:
                return results
            node = yield from self.pool.get_page(tree.file_id, nxt)
        return results

    def clustered_start_page(self, table: str, index: str, lo: Any) -> Generator:
        """Coroutine: the heap page where key range ``[lo, ...`` begins.

        Descends the clustered index root-to-leaf (timed).  Returns 0 for
        an unbounded scan and ``num_pages`` when ``lo`` lies past the end.
        """
        info = self.catalog.index(table, index)
        if not info.clustered:
            raise ValueError(f"{index!r} is not a clustered index")
        if lo is None:
            return 0
        tree = info.tree
        block = tree.root_block
        node = yield from self.pool.get_page(tree.file_id, block)
        while not node["leaf"]:
            block = tree.child_for(node, lo)
            node = yield from self.pool.get_page(tree.file_id, block)
        for key, values in zip(node["keys"], node["vals"]):
            if key >= lo:
                return values[0].block_no
        if node["next"] >= 0:
            nxt = yield from self.pool.get_page(tree.file_id, node["next"])
            if nxt["keys"]:
                return nxt["vals"][0][0].block_no
        return self.num_pages(table)

    # ------------------------------------------------------------------
    # Timed writes (section 4.3.4: updates go through locking upstream)
    # ------------------------------------------------------------------
    def insert_row(self, table: str, row: tuple) -> Generator:
        """Coroutine: append one row, maintain indexes, charge writes."""
        info = self.catalog.table(table)
        if len(row) != len(info.schema):
            raise ValueError(
                f"row arity {len(row)} != schema arity {len(info.schema)}"
            )
        rid = info.heap.append_row(row)
        yield from self.pool.write_page(info.heap.file_id, rid.block_no)
        for index in info.indexes.values():
            key = self._key_fn(info.schema, index.key_columns)(row)
            index.tree.insert(key, rid)
            # Charge one leaf write per maintained index.
            yield from self.host.disk.write(index.tree.file_id, 0)
        return rid

    def delete_row(self, table: str, rid: RID) -> Generator:
        """Coroutine: tombstone one row and unhook it from indexes."""
        info = self.catalog.table(table)
        page = yield from self.read_table_page(table, rid.block_no)
        row = page.get(rid.slot)
        if row is None:
            return False
        page.delete(rid.slot)
        info.heap._row_count -= 1
        yield from self.pool.write_page(info.heap.file_id, rid.block_no)
        for index in info.indexes.values():
            key = self._key_fn(info.schema, index.key_columns)(row)
            index.tree.delete(key, rid)
            yield from self.host.disk.write(index.tree.file_id, 0)
        return True

    def update_row(self, table: str, rid: RID, new_row: tuple) -> Generator:
        """Coroutine: in-place update (key changes update the indexes)."""
        info = self.catalog.table(table)
        page = yield from self.read_table_page(table, rid.block_no)
        old_row = page.get(rid.slot)
        if old_row is None:
            return False
        page.update(rid.slot, new_row)
        yield from self.pool.write_page(info.heap.file_id, rid.block_no)
        for index in info.indexes.values():
            key_fn = self._key_fn(info.schema, index.key_columns)
            old_key, new_key = key_fn(old_row), key_fn(new_row)
            if old_key != new_key:
                index.tree.delete(old_key, rid)
                index.tree.insert(new_key, rid)
                yield from self.host.disk.write(index.tree.file_id, 0)
        return True

    # ------------------------------------------------------------------
    # Temp files (sort runs, OSP materialisations)
    # ------------------------------------------------------------------
    def create_temp_file(self, row_width: int, label: str = "tmp") -> HeapFile:
        self._temp_count += 1
        name = f"{label}#{self._temp_count}"
        return HeapFile(self.store, name, rows_per_page(row_width))

    def drop_temp_file(self, heap: HeapFile) -> None:
        self.pool.invalidate_file(heap.file_id)
        self.store.drop_file(heap.file_id)

    def write_run(self, heap: HeapFile, rows: Sequence[tuple]) -> Generator:
        """Coroutine: append *rows* to a temp heap, charging page writes."""
        if not rows:
            return 0
        first_new_page = heap.num_pages
        for row in rows:
            heap.append_row(row)
        for block_no in range(max(0, first_new_page - 1), heap.num_pages):
            yield from self.host.disk.write(heap.file_id, block_no)
        return len(rows)

    def read_temp_page(self, heap: HeapFile, block_no: int) -> Generator:
        """Coroutine: one temp-file page through the buffer pool."""
        page = yield from self.pool.get_page(heap.file_id, block_no)
        return page

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def num_pages(self, table: str) -> int:
        return self.catalog.table(table).num_pages

    def num_rows(self, table: str) -> int:
        return self.catalog.table(table).num_rows

    def table_file_id(self, table: str) -> int:
        return self.catalog.table(table).heap.file_id
