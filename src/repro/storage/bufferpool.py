"""The buffer pool: frames, pins, in-flight read coalescing, eviction.

Two details matter for reproducing the paper's sharing behaviour:

* **In-flight coalescing.**  When a page miss is already being read on
  behalf of another query, later requesters wait on the same disk read
  instead of issuing a duplicate.  This is how the *conventional* systems
  share pages when queries arrive in lockstep (the interarrival-0 points
  of Figure 8 where Baseline matches QPipe).
* **Page-level interface.**  The pool never knows who is asking or why --
  exactly the limitation (section 2.1) that prevents conventional engines
  from coordinating scans, and that QPipe's OSP bypasses at a higher layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Tuple

from repro.faults.errors import FaultError
from repro.hw.disk import Disk
from repro.sim import Event, SimulationError, Simulator
from repro.sim.errors import Interrupted
from repro.storage.file import BlockStore
from repro.storage.replacement import ReplacementPolicy, make_policy

Key = Tuple[int, int]  # (file_id, block_no)


class BufferPoolFull(SimulationError):
    """Every frame is pinned; there is nothing to evict."""


@dataclass
class BufferPoolStats:
    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.coalesced

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        if total == 0:
            return 0.0
        return (self.hits + self.coalesced) / total


@dataclass
class BufferPool:
    """A fixed number of page frames over one :class:`BlockStore` + disk."""

    sim: Simulator
    disk: Disk
    store: BlockStore
    capacity: int
    policy: Optional[ReplacementPolicy] = None
    policy_name: str = "lru"
    page_hit_cost: float = 0.00002
    #: Frames reserved for sequential-scan pages, as a fraction of the
    #: pool.  Storage managers give scans a small ring so one big scan
    #: cannot flood the pool; scan pages recycle within this ring and a
    #: follower query finds only the most recent ring-window resident.
    #: Setting ``use_scan_ring=False`` hands scan pages to the policy
    #: instead -- the right configuration for inherently scan-resistant
    #: policies such as ARC (the "DBMS X" pool), whose retained scan
    #: window is what gives X better page sharing than plain LRU.
    scan_ring_fraction: float = 0.125
    use_scan_ring: bool = True
    #: When True, ring pages are visible to *other* requesters (a shared
    #: scan window a la commercial multi-scan optimisations): a scan
    #: arriving within the window rides the leader.  BerkeleyDB-style
    #: pools keep rings private (False); the "DBMS X" pool shares its
    #: window, which is exactly the timing-sensitive pool sharing the
    #: paper credits it with.
    scan_window_shared: bool = False
    #: Bounded retry for *transient* injected faults (disk read errors,
    #: transient page corruption): up to ``max_retries`` extra attempts
    #: with exponential virtual-time backoff.  Permanent faults and
    #: exhausted retries surface the typed error to the caller.
    max_retries: int = 3
    retry_backoff: float = 0.002
    stats: BufferPoolStats = field(default_factory=BufferPoolStats)

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"pool capacity must be >= 1: {self.capacity}")
        if self.policy is None:
            self.policy = make_policy(self.policy_name, self.capacity)
        self._frames: Dict[Key, Any] = {}
        self._pins: Dict[Key, int] = {}
        self._in_flight: Dict[Key, Event] = {}
        from collections import OrderedDict

        self._scan_ring: "OrderedDict[Key, bool]" = OrderedDict()
        self.scan_ring_size = max(2, int(self.capacity * self.scan_ring_fraction))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def contains(self, file_id: int, block_no: int) -> bool:
        """Whether the page is resident (untimed; WoP checks use this)."""
        return (file_id, block_no) in self._frames

    @property
    def resident(self) -> int:
        return len(self._frames)

    def pin_count(self, file_id: int, block_no: int) -> int:
        return self._pins.get((file_id, block_no), 0)

    # ------------------------------------------------------------------
    # Timed access
    # ------------------------------------------------------------------
    def get_page(
        self, file_id: int, block_no: int, pin: bool = False,
        cold: bool = False, stream: Any = None,
    ) -> Generator:
        """Coroutine: fetch one page's payload, charging hit or miss costs.

        Returns the payload object; with ``pin=True`` the frame is held
        unevictable until :meth:`unpin`.  ``cold=True`` marks a
        sequential-scan read and ``stream`` identifies the scan: the
        frame lives in that scan's *private* ring (a handful of recycled
        frames), invisible to other requesters -- so one scan can neither
        flood the pool nor leave a trailing window other scans ride on.
        Simultaneous requests still coalesce on the in-flight read.
        """
        key = (file_id, block_no)
        payload = self._frames.get(key)
        if payload is not None:
            ring_owner = self._scan_ring.get(key)
            if (
                ring_owner is not None
                and ring_owner != stream
                and not self.scan_window_shared
            ):
                # The page sits in another scan's private ring: it is not
                # in the shared pool hash, so this is a miss for us.
                payload = None
            else:
                self.stats.hits += 1
                self.sim.tracer.pool("hit", file_id, block_no)
                if ring_owner is not None and not cold:
                    # A non-scan touch promotes the page into the pool.
                    del self._scan_ring[key]
                    self.policy.on_insert(key)
                elif ring_owner is None:
                    self.policy.on_hit(key)
                if pin:
                    self._pins[key] = self._pins.get(key, 0) + 1
                    self.sim.tracer.pool("pin", file_id, block_no)
                try:
                    yield self.sim.timeout(self.page_hit_cost)
                except Interrupted:
                    # The requester died mid-hit: give back the pin it
                    # will never release.
                    if pin:
                        self.unpin(file_id, block_no)
                    raise
                return payload

        pending = self._in_flight.get(key)
        if pending is not None:
            # Someone else is already reading this page: piggyback.
            self.stats.coalesced += 1
            self.sim.tracer.pool("coalesced", file_id, block_no)
            yield pending
            payload = self._frames.get(key)
            if payload is None:
                # The reader was interrupted; retry from scratch.
                return (
                    yield from self.get_page(
                        file_id, block_no, pin=pin, cold=cold, stream=stream
                    )
                )
            if key not in self._scan_ring:
                self.policy.on_hit(key)
            if pin:
                self._pins[key] = self._pins.get(key, 0) + 1
                self.sim.tracer.pool("pin", file_id, block_no)
            return payload

        # Genuine miss: this process performs the read.
        self.stats.misses += 1
        self.sim.tracer.pool("miss", file_id, block_no)
        done = self.sim.event()
        self._in_flight[key] = done
        try:
            if key not in self._frames:
                self._make_room()
            yield from self._read_with_retry(file_id, block_no)
            payload = self.store.read_block(file_id, block_no)
            self._frames[key] = payload
            if cold and self.use_scan_ring:
                self._scan_ring[key] = stream
                self._trim_scan_ring()
            else:
                self._scan_ring.pop(key, None)
                self.policy.on_insert(key)
        finally:
            del self._in_flight[key]
            done.succeed()
        if pin:
            self._pins[key] = self._pins.get(key, 0) + 1
            self.sim.tracer.pool("pin", file_id, block_no)
        return payload

    def _read_with_retry(self, file_id: int, block_no: int) -> Generator:
        """Coroutine: disk read + checksum verify with bounded retry.

        Transient faults (see :class:`~repro.faults.errors.FaultError`)
        are retried up to ``max_retries`` times with exponential backoff
        in virtual time; permanent faults and exhausted budgets re-raise.
        """
        attempt = 0
        while True:
            try:
                yield from self.disk.read(file_id, block_no)
                self.store.verify_block(file_id, block_no)
                return
            except FaultError as exc:
                attempt += 1
                retriable = exc.transient and attempt <= self.max_retries
                self.sim.tracer.fault(
                    "retry" if retriable else "giveup",
                    file=file_id, block=block_no,
                    attempt=attempt, error=type(exc).__name__,
                )
                if not retriable:
                    raise
                yield self.sim.timeout(
                    self.retry_backoff * (2 ** (attempt - 1))
                )

    def write_page(self, file_id: int, block_no: int) -> Generator:
        """Coroutine: write-through one (already mutated) page to disk."""
        key = (file_id, block_no)
        if key not in self._frames:
            self._make_room()
            self._frames[key] = self.store.read_block(file_id, block_no)
            self.policy.on_insert(key)
        else:
            self.policy.on_hit(key)
        yield from self.disk.write(file_id, block_no)

    def unpin(self, file_id: int, block_no: int) -> None:
        key = (file_id, block_no)
        count = self._pins.get(key, 0)
        if count <= 0:
            raise SimulationError(f"unpin of unpinned page {key}")
        if count == 1:
            del self._pins[key]
        else:
            self._pins[key] = count - 1
        self.sim.tracer.pool("unpin", file_id, block_no)

    def invalidate_file(self, file_id: int) -> None:
        """Drop all frames of a file (used when a temp file is deleted)."""
        for key in [k for k in self._frames if k[0] == file_id]:
            del self._frames[key]
            self._scan_ring.pop(key, None)
            self.policy.on_remove(key)
            # Force-release any pins before the frame goes away so traced
            # pin/unpin pairs stay balanced even on file drops.
            for _ in range(self._pins.pop(key, 0)):
                self.sim.tracer.pool("unpin", key[0], key[1])
            self.sim.tracer.pool("evict", key[0], key[1])

    # ------------------------------------------------------------------
    def _evictable(self, key: Key) -> bool:
        return self._pins.get(key, 0) == 0

    def _trim_scan_ring(self) -> None:
        """Recycle ring frames: scans never occupy more than the ring."""
        while len(self._scan_ring) > self.scan_ring_size:
            victim, _flag = self._scan_ring.popitem(last=False)
            if self._pins.get(victim, 0) == 0 and victim in self._frames:
                del self._frames[victim]
                self.stats.evictions += 1
                self.sim.tracer.pool("evict", victim[0], victim[1])

    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity:
            # Ring pages go first, oldest first.
            victim = None
            for key in self._scan_ring:
                if self._evictable(key):
                    victim = key
                    break
            if victim is not None:
                del self._scan_ring[victim]
            else:
                victim = self.policy.victim(self._evictable)
                if victim is None:
                    raise BufferPoolFull(
                        f"all {self.capacity} frames pinned; cannot evict"
                    )
                self.policy.on_remove(victim)
            del self._frames[victim]
            self.stats.evictions += 1
            self.sim.tracer.pool("evict", victim[0], victim[1])
