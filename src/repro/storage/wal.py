"""Write-ahead logging and transaction support.

The paper leaves "the necessary transactional support" to BerkeleyDB
(section 4.4); this module is that substrate.  The design matches the
rest of the storage manager's write-through pages:

* Data page writes go straight to disk (a *steal* policy: uncommitted
  changes can be on disk at any time).
* Every change logs a **before-image** first, and the log is flushed
  before the page write (the WAL rule), so recovery can always undo.
* Commit forces the log (durability); since pages are write-through,
  committed work needs no redo -- **recovery is undo-only**: walk the
  log backwards and reverse every operation of each unfinished
  transaction.

Log appends charge sequential writes on a dedicated log device.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.hw.disk import Disk
from repro.sim import SimulationError, Simulator
from repro.storage.page import RID


class LogType(enum.Enum):
    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    txn_id: int
    type: LogType
    table: Optional[str] = None
    rid: Optional[RID] = None
    before: Optional[tuple] = None
    after: Optional[tuple] = None


@dataclass
class WriteAheadLog:
    """An append-only log on its own (simulated) device.

    Records accumulate in a buffer; :meth:`flush` makes everything up to
    the current tail durable, charging one sequential block write per
    ``records_per_block`` buffered records (log writes batch well).
    """

    sim: Simulator
    device: Disk
    records_per_block: int = 64

    def __post_init__(self):
        self.records: List[LogRecord] = []
        self.flushed_lsn = -1
        self._next_block = 0

    @property
    def tail_lsn(self) -> int:
        return len(self.records) - 1

    def append(
        self,
        txn_id: int,
        type: LogType,
        table: Optional[str] = None,
        rid: Optional[RID] = None,
        before: Optional[tuple] = None,
        after: Optional[tuple] = None,
    ) -> int:
        record = LogRecord(
            lsn=len(self.records),
            txn_id=txn_id,
            type=type,
            table=table,
            rid=rid,
            before=before,
            after=after,
        )
        self.records.append(record)
        return record.lsn

    def flush(self, up_to: Optional[int] = None) -> Generator:
        """Coroutine: make the log durable up to *up_to* (default: tail)."""
        target = self.tail_lsn if up_to is None else up_to
        if target <= self.flushed_lsn:
            return
        pending = target - self.flushed_lsn
        blocks = max(1, -(-pending // self.records_per_block))
        for _ in range(blocks):
            yield from self.device.write(0, self._next_block)
            self._next_block += 1
        self.flushed_lsn = target

    def durable_records(self) -> List[LogRecord]:
        """What survives a crash: records flushed to the device."""
        return self.records[: self.flushed_lsn + 1]


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    txn_id: int
    state: TransactionState = TransactionState.ACTIVE
    #: LSNs of this transaction's own records, in order.
    lsns: List[int] = field(default_factory=list)


class TransactionManager:
    """ACID-ish transactions over a StorageManager.

    Usage (inside a simulation process)::

        txn = tm.begin()
        rid = yield from tm.insert(txn, "t", row)
        yield from tm.update(txn, "t", rid, new_row)
        yield from tm.commit(txn)     # or: yield from tm.abort(txn)
    """

    def __init__(self, sm, log_device: Optional[Disk] = None):
        self.sm = sm
        self.sim = sm.sim
        device = log_device or Disk(
            sm.sim,
            transfer_time=sm.host.config.disk_transfer_time,
            seek_time=0.0,  # dedicated, sequential-only log device
            name="wal",
        )
        self.wal = WriteAheadLog(sm.sim, device)
        self._next_txn = 0
        self.active: Dict[int, Transaction] = {}

    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        self._next_txn += 1
        txn = Transaction(self._next_txn)
        txn.lsns.append(self.wal.append(txn.txn_id, LogType.BEGIN))
        self.active[txn.txn_id] = txn
        return txn

    def _check_active(self, txn: Transaction) -> None:
        if txn.state is not TransactionState.ACTIVE:
            raise SimulationError(
                f"transaction {txn.txn_id} is {txn.state.value}"
            )

    # ------------------------------------------------------------------
    # Logged mutations (WAL rule: flush the record before the page write)
    # ------------------------------------------------------------------
    def insert(self, txn: Transaction, table: str, row: tuple) -> Generator:
        self._check_active(txn)
        lsn = self.wal.append(
            txn.txn_id, LogType.INSERT, table=table, after=row
        )
        txn.lsns.append(lsn)
        yield from self.wal.flush(lsn)
        rid = yield from self.sm.insert_row(table, row)
        # Patch the record with the assigned RID (needed for undo).
        self.wal.records[lsn] = LogRecord(
            lsn=lsn, txn_id=txn.txn_id, type=LogType.INSERT,
            table=table, rid=rid, after=row,
        )
        yield from self.wal.flush(lsn)
        return rid

    def update(
        self, txn: Transaction, table: str, rid: RID, new_row: tuple
    ) -> Generator:
        self._check_active(txn)
        page = yield from self.sm.read_table_page(table, rid.block_no)
        before = page.get(rid.slot)
        if before is None:
            raise KeyError(f"{rid} is a tombstone in {table}")
        lsn = self.wal.append(
            txn.txn_id, LogType.UPDATE, table=table, rid=rid,
            before=before, after=new_row,
        )
        txn.lsns.append(lsn)
        yield from self.wal.flush(lsn)
        yield from self.sm.update_row(table, rid, new_row)

    def delete(self, txn: Transaction, table: str, rid: RID) -> Generator:
        self._check_active(txn)
        page = yield from self.sm.read_table_page(table, rid.block_no)
        before = page.get(rid.slot)
        if before is None:
            return False
        lsn = self.wal.append(
            txn.txn_id, LogType.DELETE, table=table, rid=rid, before=before
        )
        txn.lsns.append(lsn)
        yield from self.wal.flush(lsn)
        yield from self.sm.delete_row(table, rid)
        return True

    # ------------------------------------------------------------------
    def commit(self, txn: Transaction) -> Generator:
        self._check_active(txn)
        lsn = self.wal.append(txn.txn_id, LogType.COMMIT)
        txn.lsns.append(lsn)
        yield from self.wal.flush(lsn)  # durability point
        txn.state = TransactionState.COMMITTED
        del self.active[txn.txn_id]

    def abort(self, txn: Transaction) -> Generator:
        """Roll the transaction back using its before-images."""
        self._check_active(txn)
        for lsn in reversed(txn.lsns):
            yield from self._undo(self.wal.records[lsn])
        lsn = self.wal.append(txn.txn_id, LogType.ABORT)
        yield from self.wal.flush(lsn)
        txn.state = TransactionState.ABORTED
        del self.active[txn.txn_id]

    def _undo(self, record: LogRecord) -> Generator:
        if record.type is LogType.INSERT and record.rid is not None:
            yield from self.sm.delete_row(record.table, record.rid)
        elif record.type is LogType.UPDATE:
            yield from self.sm.update_row(
                record.table, record.rid, record.before
            )
        elif record.type is LogType.DELETE:
            yield from self._undelete(record)

    def _undelete(self, record: LogRecord) -> Generator:
        info = self.sm.catalog.table(record.table)
        page = yield from self.sm.read_table_page(
            record.table, record.rid.block_no
        )
        page.restore(record.rid.slot, record.before)
        info.heap._row_count += 1
        yield from self.sm.pool.write_page(
            info.heap.file_id, record.rid.block_no
        )
        for index in info.indexes.values():
            key = self.sm._key_fn(info.schema, index.key_columns)(
                record.before
            )
            index.tree.insert(key, record.rid)
            yield from self.sm.host.disk.write(index.tree.file_id, 0)

    # ------------------------------------------------------------------
    # Crash recovery (undo-only; see module docstring)
    # ------------------------------------------------------------------
    def simulate_crash(self) -> None:
        """Drop everything volatile: unflushed log records and the
        transaction table.  Data pages are write-through, so every
        *applied* operation has a durable log record (the WAL rule) and
        :meth:`recover` can always undo it."""
        self.wal.records = self.wal.durable_records()
        self.active.clear()

    def recover(self) -> Generator:
        """Coroutine: bring the database to a transaction-consistent state
        after a simulated crash.

        Only *durable* log records exist after a crash.  Transactions
        without a durable COMMIT/ABORT are losers: their operations are
        undone in reverse log order.  Returns the list of undone txn ids.
        """
        durable = self.wal.durable_records()
        finished = {
            r.txn_id
            for r in durable
            if r.type in (LogType.COMMIT, LogType.ABORT)
        }
        losers = [
            r for r in reversed(durable)
            if r.txn_id not in finished
            and r.type in (LogType.INSERT, LogType.UPDATE, LogType.DELETE)
        ]
        for record in losers:
            yield from self._undo(record)
        undone = sorted({r.txn_id for r in losers})
        for txn_id in undone:
            lsn = self.wal.append(txn_id, LogType.ABORT)
            yield from self.wal.flush(lsn)
            self.active.pop(txn_id, None)
        # Anything still "active" with no durable work simply evaporates.
        self.active.clear()
        return undone
