"""Hash/range table partitioning for sharded deployments.

A partitioned table exists once per shard: every shard's catalog holds a
:class:`TableInfo` for the *same* table name whose heap contains only
that shard's slice, annotated with a :class:`PartitionInfo` describing
which slice it is.  Replicated tables carry the ``"replicated"`` scheme
(every shard holds every row).

Two properties matter for byte-identical distributed execution
(DESIGN.md section 16):

* **Range partitioning is order-preserving**: partition ``i`` of ``n``
  is the contiguous slice ``rows[i*len//n : (i+1)*len//n]`` of the
  stored row order, so concatenating partitions ``0..n-1`` reproduces
  the single-host table exactly -- including the row order every
  order-sensitive float accumulation depends on.
* **Hash partitioning is process-independent**: bucket choice uses
  :func:`stable_hash` (CRC-32 of the value's repr), never Python's
  builtin ``hash`` whose string hashing is randomized per process.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.relational.schema import Schema

SCHEMES = ("range", "hash", "replicated")


@dataclass(frozen=True)
class PartitionInfo:
    """Which slice of a partitioned table one shard's copy holds."""

    #: "range" | "hash" | "replicated".
    scheme: str
    #: Total number of shards the table is split across.
    count: int
    #: This copy's partition number in ``0..count-1``.
    index: int
    #: Hash key column ("hash" scheme only; None for range/replicated).
    column: Optional[str] = None

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown partition scheme {self.scheme!r}; "
                f"want one of {SCHEMES}"
            )
        if self.count < 1:
            raise ValueError(f"partition count must be >= 1: {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"partition index {self.index} out of 0..{self.count - 1}"
            )
        if self.scheme == "hash" and not self.column:
            raise ValueError("hash partitioning needs a key column")
        if self.scheme != "hash" and self.column is not None:
            raise ValueError(
                f"{self.scheme!r} partitioning takes no key column"
            )

    @property
    def partitioned(self) -> bool:
        """Whether this copy holds a strict subset of the table."""
        return self.scheme != "replicated" and self.count > 1

    def signature(self) -> str:
        key = self.column or "-"
        return f"{self.scheme}({key};{self.index}/{self.count})"


def stable_hash(value: Any) -> int:
    """A deterministic, process-independent hash for partition routing.

    CRC-32 over the value's repr: cheap, stable across interpreter
    processes (unlike ``hash(str)`` under hash randomization), and good
    enough spread for bucket routing.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


def range_partition(rows: Sequence[tuple], count: int) -> List[List[tuple]]:
    """Contiguous order-preserving slices of the stored row order.

    Partition ``i`` gets ``rows[i*n//count : (i+1)*n//count]``; the
    slices concatenate back to exactly *rows* (the property distributed
    gather relies on for byte-identical results).
    """
    if count < 1:
        raise ValueError(f"partition count must be >= 1: {count}")
    n = len(rows)
    return [
        list(rows[i * n // count:(i + 1) * n // count])
        for i in range(count)
    ]


def hash_partition(
    rows: Sequence[tuple], schema: Schema, column: str, count: int
) -> List[List[tuple]]:
    """Bucket rows by ``stable_hash(row[column]) % count``.

    Within each bucket the input order is preserved (stable routing),
    so per-bucket streams are individually deterministic even though
    the buckets interleave arbitrarily.
    """
    if count < 1:
        raise ValueError(f"partition count must be >= 1: {count}")
    idx = schema.index_of(column)
    parts: List[List[tuple]] = [[] for _ in range(count)]
    for row in rows:
        parts[stable_hash(row[idx]) % count].append(row)
    return parts


def partition_rows(
    rows: Sequence[tuple],
    schema: Schema,
    scheme: str,
    count: int,
    column: Optional[str] = None,
) -> List[List[tuple]]:
    """Split *rows* per *scheme*; ``"replicated"`` copies them N times."""
    if scheme == "range":
        return range_partition(rows, count)
    if scheme == "hash":
        if column is None:
            raise ValueError("hash partitioning needs a key column")
        return hash_partition(rows, schema, column, count)
    if scheme == "replicated":
        return [list(rows) for _ in range(count)]
    raise ValueError(
        f"unknown partition scheme {scheme!r}; want one of {SCHEMES}"
    )
