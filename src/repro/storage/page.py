"""Pages, slots, and record identifiers.

A page holds up to ``capacity`` rows in slot order.  Rows are plain Python
tuples; the *declared* row width (bytes) of the owning table determines how
many rows fit an 8 KB page, which is what keeps the simulated table sizes
proportional to the paper's datasets.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional, Tuple

#: Simulated page size in bytes (BerkeleyDB's common default).
PAGE_SIZE = 8192


class RID(NamedTuple):
    """A record identifier: (block number, slot within the page).

    RIDs order by page first, which is exactly the property the paper's
    unclustered index scan exploits when it sorts the matching RID list
    "on ascending page number to avoid multiple visits on the same page".
    A NamedTuple rather than a dataclass: RIDs are constructed and
    compared in bulk (index builds, RID-list sorts), where tuple's
    C-level __new__/__lt__ beat generated dataclass methods by an order
    of magnitude.
    """

    block_no: int
    slot: int

    def __repr__(self):
        return f"RID({self.block_no},{self.slot})"


class Page:
    """A slotted page of rows.

    Deleted slots become ``None`` tombstones so that live RIDs never move
    (no slot compaction), matching the stability guarantees a storage
    manager must give its indexes.
    """

    __slots__ = ("capacity", "_slots")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"page capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._slots: List[Optional[tuple]] = []

    @property
    def num_slots(self) -> int:
        """Total slots including tombstones."""
        return len(self._slots)

    @property
    def num_live(self) -> int:
        return sum(1 for row in self._slots if row is not None)

    @property
    def full(self) -> bool:
        return len(self._slots) >= self.capacity

    def insert(self, row: tuple) -> int:
        """Append *row*; returns the slot number.

        Raises ValueError when the page is full.
        """
        if self.full:
            raise ValueError("page is full")
        self._slots.append(row)
        return len(self._slots) - 1

    def get(self, slot: int) -> Optional[tuple]:
        """The row at *slot*, or None for a tombstone."""
        if not 0 <= slot < len(self._slots):
            raise IndexError(f"slot {slot} out of range 0..{len(self._slots)-1}")
        return self._slots[slot]

    def update(self, slot: int, row: tuple) -> None:
        if not 0 <= slot < len(self._slots):
            raise IndexError(f"slot {slot} out of range")
        if self._slots[slot] is None:
            raise ValueError(f"slot {slot} is a tombstone")
        self._slots[slot] = row

    def delete(self, slot: int) -> None:
        """Tombstone the row at *slot*."""
        if not 0 <= slot < len(self._slots):
            raise IndexError(f"slot {slot} out of range")
        self._slots[slot] = None

    def restore(self, slot: int, row: tuple) -> None:
        """Un-tombstone *slot* (transaction rollback of a delete)."""
        if not 0 <= slot < len(self._slots):
            raise IndexError(f"slot {slot} out of range")
        if self._slots[slot] is not None:
            raise ValueError(f"slot {slot} is occupied")
        self._slots[slot] = row

    def extend(self, rows: List[tuple]) -> int:
        """Bulk-append up to the remaining capacity; returns rows taken.

        Equivalent to repeated :meth:`insert` (same slots, same order);
        the dataset loader uses it to fill pages without a per-row call.
        """
        free = self.capacity - len(self._slots)
        if free <= 0:
            return 0
        taken = rows[:free]
        self._slots.extend(taken)
        return len(taken)

    def rows(self) -> List[tuple]:
        """All live rows in slot order."""
        return [row for row in self._slots if row is not None]

    def items(self) -> Iterator[Tuple[int, tuple]]:
        """(slot, row) pairs for live rows."""
        for slot, row in enumerate(self._slots):
            if row is not None:
                yield slot, row

    def __len__(self):
        return self.num_live

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Page {self.num_live}/{self.capacity}>"


def rows_per_page(row_width: int, page_size: int = PAGE_SIZE) -> int:
    """How many rows of *row_width* bytes fit one page (at least 1)."""
    if row_width <= 0:
        raise ValueError(f"row width must be positive: {row_width}")
    return max(1, page_size // row_width)
