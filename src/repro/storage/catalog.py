"""The catalog: table and index metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.relational.schema import Schema
from repro.storage.btree import BPlusTree
from repro.storage.file import HeapFile
from repro.storage.partition import PartitionInfo


@dataclass
class IndexInfo:
    """One B+tree index over a table.

    ``clustered`` means the heap file itself is stored in key order, so a
    range scan over this index reads the heap sequentially (the paper's
    clustered index scans of section 5.1.2).
    """

    name: str
    table: str
    key_columns: List[str]
    tree: BPlusTree
    clustered: bool = False


@dataclass
class TableInfo:
    """One base table: schema, heap file, and its indexes.

    In a sharded deployment ``partitioning`` says which slice of the
    logical table this catalog's heap holds (None: the whole table, the
    single-host default).
    """

    name: str
    schema: Schema
    heap: HeapFile
    clustered_on: Optional[List[str]] = None
    indexes: Dict[str, IndexInfo] = field(default_factory=dict)
    partitioning: Optional[PartitionInfo] = None

    @property
    def num_rows(self) -> int:
        return self.heap.num_rows

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages


class Catalog:
    """Name -> metadata maps for tables and indexes."""

    def __init__(self):
        self._tables: Dict[str, TableInfo] = {}

    def add_table(self, info: TableInfo) -> None:
        if info.name in self._tables:
            raise ValueError(f"table {info.name!r} already exists")
        self._tables[info.name] = info

    def drop_table(self, name: str) -> None:
        self._tables.pop(name, None)

    def table(self, name: str) -> TableInfo:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table {name!r}; have {sorted(self._tables)}"
            ) from None

    def table_schema(self, name: str) -> Schema:
        return self.table(name).schema

    def index(self, table: str, index: str) -> IndexInfo:
        info = self.table(table)
        try:
            return info.indexes[index]
        except KeyError:
            raise KeyError(
                f"no index {index!r} on {table!r}; have "
                f"{sorted(info.indexes)}"
            ) from None

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables
