"""Buffer replacement policies.

Section 2.1 of the paper surveys the policies a buffer manager may use --
LRU and its descendants LRU-K [22] and 2Q [18], and the self-tuning ARC
[21].  The degree of cross-query page sharing the *conventional* engines
achieve in Figures 8 and 12 is a function of exactly this policy, so the
pool accepts any of them:

* the Baseline system models BerkeleyDB's pool (plain LRU), and
* DBMS X models the commercial system whose "buffer pool manager achieves
  better sharing" (ARC by default).

A policy tracks the set of resident keys and answers one question: *which
resident, evictable key should go next?*

Hot-path audit (DESIGN.md section 10): every ``on_hit`` here is O(1).
The ``victim`` scans in LRU/MRU/2Q/ARC start at the eviction-order front
and only walk past *pinned* entries, so they are O(pinned prefix), not
O(resident); LRU-K is the one policy whose backward-K-distance ranking
has no natural queue order, so it keeps a lazy min-heap of ``(rank,
insertion, version, key)`` entries -- stale versions are skipped on pop,
making ``victim`` amortised O(log n) instead of a full resident scan.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from typing import Callable, Dict, Hashable, List, Optional, Tuple

Key = Hashable
Evictable = Callable[[Key], bool]


class ReplacementPolicy:
    """Interface: the buffer pool calls these hooks."""

    name = "abstract"

    def on_insert(self, key: Key) -> None:
        """A key became resident (after a miss)."""
        raise NotImplementedError

    def on_hit(self, key: Key) -> None:
        """A resident key was referenced."""
        raise NotImplementedError

    def on_remove(self, key: Key) -> None:
        """A key left the pool (evicted or invalidated)."""
        raise NotImplementedError

    def victim(self, evictable: Evictable) -> Optional[Key]:
        """The preferred eviction victim among resident evictable keys."""
        raise NotImplementedError


class LRU(ReplacementPolicy):
    """Least-recently-used (BerkeleyDB's default; the Baseline's pool)."""

    name = "lru"

    def __init__(self):
        self._order: OrderedDict = OrderedDict()

    def on_insert(self, key):
        self._order[key] = True
        self._order.move_to_end(key)

    def on_hit(self, key):
        if key in self._order:
            self._order.move_to_end(key)

    def on_remove(self, key):
        self._order.pop(key, None)

    def victim(self, evictable):
        for key in self._order:
            if evictable(key):
                return key
        return None


class MRU(ReplacementPolicy):
    """Most-recently-used: optimal for repeated larger-than-memory scans."""

    name = "mru"

    def __init__(self):
        self._order: OrderedDict = OrderedDict()

    def on_insert(self, key):
        self._order[key] = True
        self._order.move_to_end(key)

    def on_hit(self, key):
        if key in self._order:
            self._order.move_to_end(key)

    def on_remove(self, key):
        self._order.pop(key, None)

    def victim(self, evictable):
        for key in reversed(self._order):
            if evictable(key):
                return key
        return None


class Clock(ReplacementPolicy):
    """The clock (second-chance) approximation of LRU."""

    name = "clock"

    def __init__(self):
        self._ring: list = []
        self._ref: Dict[Key, bool] = {}
        self._hand = 0

    def on_insert(self, key):
        self._ring.append(key)
        self._ref[key] = True

    def on_hit(self, key):
        if key in self._ref:
            self._ref[key] = True

    def on_remove(self, key):
        if key in self._ref:
            del self._ref[key]
            idx = self._ring.index(key)
            self._ring.pop(idx)
            if idx < self._hand:
                self._hand -= 1
            if self._ring:
                self._hand %= len(self._ring)
            else:
                self._hand = 0

    def victim(self, evictable):
        if not self._ring:
            return None
        # Two sweeps: the first clears reference bits, the second must find
        # someone (unless everything is pinned).
        for _sweep in range(2 * len(self._ring)):
            key = self._ring[self._hand]
            if not evictable(key):
                self._hand = (self._hand + 1) % len(self._ring)
                continue
            if self._ref[key]:
                self._ref[key] = False
                self._hand = (self._hand + 1) % len(self._ring)
                continue
            return key
        return None


class LRUK(ReplacementPolicy):
    """LRU-K [O'Neil et al., SIGMOD 1993]; evicts the maximum backward
    K-distance page.  Pages with fewer than K references are preferred
    victims (infinite backward distance), which is what makes LRU-K
    scan-resistant.
    """

    name = "lru-k"

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError(f"k must be >= 1: {k}")
        self.k = k
        self._history: Dict[Key, deque] = {}
        #: key -> insertion sequence number of its current residency; the
        #: heap tie-break on this number reproduces the resident-dict
        #: iteration order the old linear scan used, so victims (and
        #: therefore pool contents and traces) are unchanged.
        self._resident: Dict[Key, int] = {}
        self._version: Dict[Key, int] = {}
        #: Lazy min-heap of (rank, insertion, version, key); an entry is
        #: current iff both insertion and version match the dicts.
        self._heap: List[Tuple] = []
        self._tick = 0
        self._ins_seq = 0

    def _touch(self, key):
        self._tick += 1
        hist = self._history.setdefault(key, deque(maxlen=self.k))
        hist.append(self._tick)
        ins = self._resident.get(key)
        if ins is not None:
            version = self._version.get(key, 0) + 1
            self._version[key] = version
            heapq.heappush(self._heap, (self._kth_ref(key), ins, version, key))
            if len(self._heap) > 4 * len(self._resident) + 64:
                self._rebuild()

    def _rebuild(self):
        self._heap = [
            (self._kth_ref(key), ins, self._version.get(key, 0), key)
            for key, ins in self._resident.items()
        ]
        heapq.heapify(self._heap)

    def on_insert(self, key):
        self._ins_seq += 1
        self._resident[key] = self._ins_seq
        self._touch(key)

    def on_hit(self, key):
        self._touch(key)

    def on_remove(self, key):
        self._resident.pop(key, None)
        # History survives eviction (the "retained information" of the paper).

    def _kth_ref(self, key) -> float:
        hist = self._history.get(key)
        if hist is None or len(hist) < self.k:
            return float("-inf")  # infinite backward distance
        return hist[0]

    def victim(self, evictable):
        heap = self._heap
        heappop, heappush = heapq.heappop, heapq.heappush
        pinned: List[Tuple] = []
        found = None
        while heap:
            rank, ins, version, key = heap[0]
            if (
                self._resident.get(key) != ins
                or self._version.get(key, 0) != version
            ):
                heappop(heap)  # stale: key evicted or re-referenced since
                continue
            entry = heappop(heap)
            if evictable(key):
                found = entry
                break
            pinned.append(entry)
        # Unevictable entries (and the winner, in case the pool declines
        # to evict it) go back for the next call.
        for entry in pinned:
            heappush(heap, entry)
        if found is None:
            return None
        heappush(heap, found)
        return found[3]


class TwoQ(ReplacementPolicy):
    """2Q [Johnson & Shasha, VLDB 1994], full version.

    New pages enter the FIFO queue *A1in*; on eviction from A1in their
    identity is remembered in the ghost queue *A1out*.  A page re-read
    while remembered in A1out is promoted to the main LRU queue *Am*.
    Single-touch scan pages therefore wash through A1in without ever
    polluting Am.
    """

    name = "2q"

    def __init__(self, capacity: int, kin_fraction: float = 0.25,
                 kout_fraction: float = 0.5):
        if capacity < 2:
            raise ValueError(f"2Q needs capacity >= 2: {capacity}")
        self.capacity = capacity
        self.kin = max(1, int(capacity * kin_fraction))
        self.kout = max(1, int(capacity * kout_fraction))
        self._a1in: OrderedDict = OrderedDict()
        self._a1out: OrderedDict = OrderedDict()  # ghosts (not resident)
        self._am: OrderedDict = OrderedDict()

    def on_insert(self, key):
        if key in self._a1out:
            del self._a1out[key]
            self._am[key] = True
            self._am.move_to_end(key)
        else:
            self._a1in[key] = True
            self._a1in.move_to_end(key)

    def on_hit(self, key):
        if key in self._am:
            self._am.move_to_end(key)
        # Hits in A1in deliberately do not reorder (2Q's correlated-
        # reference rule).

    def on_remove(self, key):
        if key in self._a1in:
            del self._a1in[key]
            self._a1out[key] = True
            while len(self._a1out) > self.kout:
                self._a1out.popitem(last=False)
        else:
            self._am.pop(key, None)

    def victim(self, evictable):
        if len(self._a1in) > self.kin or not self._am:
            for key in self._a1in:
                if evictable(key):
                    return key
        for key in self._am:
            if evictable(key):
                return key
        for key in self._a1in:
            if evictable(key):
                return key
        return None


class ARC(ReplacementPolicy):
    """ARC [Megiddo & Modha, FAST 2003].

    Two resident LRU lists -- T1 (seen once recently) and T2 (seen at
    least twice) -- plus ghost lists B1/B2, with the target size ``p`` of
    T1 adapted on every ghost hit.  Self-tuning and scan-resistant; this
    is the pool configuration we give "DBMS X".
    """

    name = "arc"

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"ARC needs capacity >= 1: {capacity}")
        self.c = capacity
        self.p = 0.0
        self._t1: OrderedDict = OrderedDict()
        self._t2: OrderedDict = OrderedDict()
        self._b1: OrderedDict = OrderedDict()  # ghosts
        self._b2: OrderedDict = OrderedDict()  # ghosts

    def on_insert(self, key):
        if key in self._b1:
            # Ghost hit in B1: favour recency; promote straight to T2.
            self.p = min(self.c, self.p + max(1.0, len(self._b2) / max(1, len(self._b1))))
            del self._b1[key]
            self._t2[key] = True
            self._t2.move_to_end(key)
        elif key in self._b2:
            # Ghost hit in B2: favour frequency.
            self.p = max(0.0, self.p - max(1.0, len(self._b1) / max(1, len(self._b2))))
            del self._b2[key]
            self._t2[key] = True
            self._t2.move_to_end(key)
        else:
            self._t1[key] = True
            self._t1.move_to_end(key)
            while len(self._b1) > self.c:
                self._b1.popitem(last=False)
        while len(self._b2) > self.c:
            self._b2.popitem(last=False)

    def on_hit(self, key):
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = True
            self._t2.move_to_end(key)
        elif key in self._t2:
            self._t2.move_to_end(key)

    def on_remove(self, key):
        if key in self._t1:
            del self._t1[key]
            self._b1[key] = True
        elif key in self._t2:
            del self._t2[key]
            self._b2[key] = True

    def victim(self, evictable):
        # REPLACE: evict from T1 when it exceeds the target p, else T2.
        prefer_t1 = len(self._t1) > 0 and len(self._t1) > self.p
        first, second = (self._t1, self._t2) if prefer_t1 else (self._t2, self._t1)
        for queue in (first, second):
            for key in queue:
                if evictable(key):
                    return key
        return None


def make_policy(name: str, capacity: int) -> ReplacementPolicy:
    """Factory by policy name: lru | mru | clock | lru-k | 2q | arc."""
    lowered = name.lower()
    if lowered == "lru":
        return LRU()
    if lowered == "mru":
        return MRU()
    if lowered == "clock":
        return Clock()
    if lowered in ("lru-k", "lruk", "lru2"):
        return LRUK(k=2)
    if lowered in ("2q", "twoq"):
        return TwoQ(capacity)
    if lowered == "arc":
        return ARC(capacity)
    raise ValueError(f"unknown replacement policy: {name!r}")
