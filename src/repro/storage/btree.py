"""A page-based B+tree.

Nodes are block payloads inside the shared :class:`BlockStore`, so *timed*
traversals go through the buffer pool page by page (the storage manager
does this); the methods here also offer untimed direct access for
loaders, tests, and invariant checks.

Duplicates are supported by storing a list of values per key, which is
what a secondary index over a foreign key needs (e.g. ORDERS.o_custkey).

Deletion is lazy: the (key, value) pair is removed from its leaf but
nodes are never merged.  The read-mostly workloads of the paper never
stress underflow, and the invariant checker accounts for it.
"""

from __future__ import annotations

import bisect
from itertools import groupby
from operator import itemgetter
from typing import Any, Iterator, List, Optional, Tuple

from repro.storage.file import BlockStore

#: groupby key for (key, value) pairs.
_pair_key = itemgetter(0)

NO_NODE = -1


def _new_leaf() -> dict:
    return {"leaf": True, "keys": [], "vals": [], "next": NO_NODE}


def _new_internal() -> dict:
    return {"leaf": False, "keys": [], "children": []}


class BPlusTree:
    """A B+tree over ``(key, value)`` pairs with duplicate keys allowed.

    Args:
        store: block store that owns the tree's file.
        name: file label.
        order: maximum number of keys per node (>= 3).
    """

    def __init__(self, store: BlockStore, name: str, order: int = 64):
        if order < 3:
            raise ValueError(f"order must be >= 3: {order}")
        self.store = store
        self.name = name
        self.order = order
        self.file_id = store.create_file(name)
        self.root_block = store.append_block(self.file_id, _new_leaf())
        self.height = 1
        self.num_keys = 0
        self.num_entries = 0

    # ------------------------------------------------------------------
    # Node helpers (shared by timed and untimed traversal)
    # ------------------------------------------------------------------
    @staticmethod
    def child_for(node: dict, key: Any) -> int:
        """The child block to descend into for *key* (internal nodes)."""
        idx = bisect.bisect_right(node["keys"], key)
        return node["children"][idx]

    @staticmethod
    def leftmost_child(node: dict) -> int:
        return node["children"][0]

    def node(self, block_no: int) -> dict:
        """Untimed node fetch."""
        return self.store.read_block(self.file_id, block_no)

    # ------------------------------------------------------------------
    # Untimed operations
    # ------------------------------------------------------------------
    def _find_leaf(self, key: Any) -> Tuple[int, List[int]]:
        """Descend to the leaf for *key*; returns (leaf block, path)."""
        path: List[int] = []
        block = self.root_block
        node = self.node(block)
        while not node["leaf"]:
            path.append(block)
            block = self.child_for(node, key)
            node = self.node(block)
        return block, path

    def search(self, key: Any) -> List[Any]:
        """All values stored under *key* (empty list when absent)."""
        block, _path = self._find_leaf(key)
        node = self.node(block)
        idx = bisect.bisect_left(node["keys"], key)
        if idx < len(node["keys"]) and node["keys"][idx] == key:
            return list(node["vals"][idx])
        return []

    def insert(self, key: Any, value: Any) -> None:
        """Insert one (key, value) pair, splitting nodes as needed."""
        block, path = self._find_leaf(key)
        node = self.node(block)
        idx = bisect.bisect_left(node["keys"], key)
        if idx < len(node["keys"]) and node["keys"][idx] == key:
            node["vals"][idx].append(value)
            self.num_entries += 1
            return
        node["keys"].insert(idx, key)
        node["vals"].insert(idx, [value])
        self.num_keys += 1
        self.num_entries += 1
        if len(node["keys"]) > self.order:
            self._split(block, path)

    def delete(self, key: Any, value: Any = None) -> bool:
        """Remove *value* under *key* (or the whole key when value is None).

        Returns True when something was removed.  Lazy: no rebalancing.
        """
        block, _path = self._find_leaf(key)
        node = self.node(block)
        idx = bisect.bisect_left(node["keys"], key)
        if idx >= len(node["keys"]) or node["keys"][idx] != key:
            return False
        if value is None:
            removed = len(node["vals"][idx])
            del node["keys"][idx]
            del node["vals"][idx]
            self.num_keys -= 1
            self.num_entries -= removed
            return True
        values = node["vals"][idx]
        if value not in values:
            return False
        values.remove(value)
        self.num_entries -= 1
        if not values:
            del node["keys"][idx]
            del node["vals"][idx]
            self.num_keys -= 1
        return True

    def range_scan(
        self,
        lo: Any = None,
        hi: Any = None,
        lo_open: bool = False,
        hi_open: bool = False,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) pairs with lo <= key <= hi in key order.

        ``None`` bounds are unbounded; the ``*_open`` flags make a bound
        strict.  Untimed; the storage manager implements the timed variant
        over the same leaf chain.
        """
        if lo is not None:
            block, _path = self._find_leaf(lo)
        else:
            block = self.root_block
            node = self.node(block)
            while not node["leaf"]:
                block = self.leftmost_child(node)
                node = self.node(block)
        while block != NO_NODE:
            node = self.node(block)
            for key, values in zip(node["keys"], node["vals"]):
                if lo is not None and (key < lo or (lo_open and key == lo)):
                    continue
                if hi is not None and (key > hi or (hi_open and key == hi)):
                    return
                for value in values:
                    yield key, value
            block = node["next"]

    def first_leaf(self) -> int:
        block = self.root_block
        node = self.node(block)
        while not node["leaf"]:
            block = self.leftmost_child(node)
            node = self.node(block)
        return block

    def bulk_build(self, pairs: Iterator[Tuple[Any, Any]]) -> None:
        """Bottom-up build from *pairs* sorted by key (duplicates adjacent).

        Replaces the current (expected empty) contents.
        """
        if self.num_keys:
            raise ValueError("bulk_build requires an empty tree")
        # Group duplicates (C-speed: groupby on already-adjacent keys).
        # The sortedness check moves from per pair to per group, which
        # catches exactly the same inputs: equal keys are never split
        # across groups, so any out-of-order pair surfaces as an
        # out-of-order group key.
        keys: List[Any] = []
        vals: List[List[Any]] = []
        entries = 0
        for key, group in groupby(pairs, key=_pair_key):
            if keys and key < keys[-1]:
                raise ValueError("bulk_build input is not sorted")
            bucket = [value for _k, value in group]
            keys.append(key)
            vals.append(bucket)
            entries += len(bucket)
        self.num_keys = len(keys)
        self.num_entries = entries
        if not keys:
            return

        # Build the leaf level at ~order*2/3 occupancy for insert headroom.
        fill = max(1, (self.order * 2) // 3)
        leaf_blocks: List[int] = []
        leaf_lows: List[Any] = []
        for start in range(0, len(keys), fill):
            leaf = _new_leaf()
            leaf["keys"] = keys[start:start + fill]
            leaf["vals"] = vals[start:start + fill]
            block = self.store.append_block(self.file_id, leaf)
            leaf_blocks.append(block)
            leaf_lows.append(leaf["keys"][0])
        for i in range(len(leaf_blocks) - 1):
            self.node(leaf_blocks[i])["next"] = leaf_blocks[i + 1]

        # Build internal levels bottom-up.
        level_blocks, level_lows = leaf_blocks, leaf_lows
        height = 1
        while len(level_blocks) > 1:
            parent_blocks: List[int] = []
            parent_lows: List[Any] = []
            for start in range(0, len(level_blocks), fill + 1):
                children = level_blocks[start:start + fill + 1]
                lows = level_lows[start:start + fill + 1]
                internal = _new_internal()
                internal["children"] = children
                internal["keys"] = lows[1:]
                block = self.store.append_block(self.file_id, internal)
                parent_blocks.append(block)
                parent_lows.append(lows[0])
            level_blocks, level_lows = parent_blocks, parent_lows
            height += 1
        self.root_block = level_blocks[0]
        self.height = height

    # ------------------------------------------------------------------
    # Split machinery
    # ------------------------------------------------------------------
    def _split(self, block: int, path: List[int]) -> None:
        node = self.node(block)
        mid = len(node["keys"]) // 2
        if node["leaf"]:
            right = _new_leaf()
            right["keys"] = node["keys"][mid:]
            right["vals"] = node["vals"][mid:]
            right["next"] = node["next"]
            node["keys"] = node["keys"][:mid]
            node["vals"] = node["vals"][:mid]
            right_block = self.store.append_block(self.file_id, right)
            node["next"] = right_block
            separator = right["keys"][0]
        else:
            right = _new_internal()
            separator = node["keys"][mid]
            right["keys"] = node["keys"][mid + 1:]
            right["children"] = node["children"][mid + 1:]
            node["keys"] = node["keys"][:mid]
            node["children"] = node["children"][:mid + 1]
            right_block = self.store.append_block(self.file_id, right)

        if not path:
            # Splitting the root: grow the tree by one level.
            new_root = _new_internal()
            new_root["keys"] = [separator]
            new_root["children"] = [block, right_block]
            self.root_block = self.store.append_block(self.file_id, new_root)
            self.height += 1
            return
        parent_block = path[-1]
        parent = self.node(parent_block)
        idx = bisect.bisect_right(parent["keys"], separator)
        parent["keys"].insert(idx, separator)
        parent["children"].insert(idx + 1, right_block)
        if len(parent["keys"]) > self.order:
            self._split(parent_block, path[:-1])

    # ------------------------------------------------------------------
    # Invariant checking (property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError when any structural invariant is violated."""
        leaf_depths = set()
        seen_keys: List[Any] = []

        def walk(block: int, depth: int, lo, hi):
            node = self.node(block)
            keys = node["keys"]
            assert keys == sorted(keys), f"unsorted keys in block {block}"
            for key in keys:
                assert lo is None or key >= lo, "key below subtree bound"
                assert hi is None or key < hi, "key above subtree bound"
            if node["leaf"]:
                leaf_depths.add(depth)
                assert len(node["vals"]) == len(keys)
                for values in node["vals"]:
                    assert values, "empty value list in leaf"
                seen_keys.extend(keys)
                return
            assert len(node["children"]) == len(keys) + 1, (
                f"internal block {block} fanout mismatch"
            )
            bounds = [lo] + keys + [hi]
            for i, child in enumerate(node["children"]):
                walk(child, depth + 1, bounds[i], bounds[i + 1])

        walk(self.root_block, 1, None, None)
        assert len(leaf_depths) == 1, f"leaves at multiple depths: {leaf_depths}"
        assert leaf_depths == {self.height}, (
            f"height {self.height} != leaf depth {leaf_depths}"
        )
        assert seen_keys == sorted(seen_keys), "global key order violated"
        assert len(seen_keys) == self.num_keys, (
            f"num_keys {self.num_keys} != actual {len(seen_keys)}"
        )
        # The leaf chain must visit the same keys in the same order.
        chained = [key for key, _v in self.range_scan()]
        deduped: List[Any] = []
        for key in chained:
            if not deduped or deduped[-1] != key:
                deduped.append(key)
        assert deduped == seen_keys, "leaf chain disagrees with tree walk"

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<BPlusTree {self.name}: {self.num_keys} keys, "
            f"{self.num_entries} entries, height {self.height}>"
        )
