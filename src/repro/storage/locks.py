"""Table-level shared/exclusive locks.

Section 4.3.4: QPipe "charges the underlying storage manager with lock and
update management".  Updates route to a dedicated micro-engine that takes
an exclusive table lock; scans take shared locks.  "If a table is locked
for writing, the scan packet will simply wait (and with it, all satellite
ones), until the lock is released."

Grants are FIFO-fair: a waiting exclusive request blocks later shared
requests, so writers cannot starve.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Dict, Hashable, List, Tuple

from repro.sim import Event, SimulationError, Simulator


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockManager:
    """FIFO-fair table locks.

    Usage inside a process::

        yield lock_manager.acquire(owner, "lineitem", LockMode.SHARED)
        ...
        lock_manager.release(owner, "lineitem")
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        # resource -> list of (owner, mode) currently granted
        self._granted: Dict[Hashable, List[Tuple[Any, LockMode]]] = {}
        # resource -> FIFO of (owner, mode, event)
        self._waiting: Dict[Hashable, deque] = {}

    # ------------------------------------------------------------------
    def holders(self, resource: Hashable) -> List[Tuple[Any, LockMode]]:
        return list(self._granted.get(resource, []))

    def queue_length(self, resource: Hashable) -> int:
        return len(self._waiting.get(resource, ()))

    # ------------------------------------------------------------------
    def acquire(self, owner: Any, resource: Hashable, mode: LockMode) -> Event:
        """Request a lock; the returned event fires on grant.

        Re-acquiring a mode the owner already holds succeeds immediately
        (locks are not counted per owner; release drops the owner's grant).
        """
        event = Event(self.sim)
        event.describe = f"lock on {resource!r}"
        granted = self._granted.setdefault(resource, [])
        if any(o == owner and m == mode for o, m in granted):
            # No new grant entry is appended, so no acquire event either:
            # the lock-balance invariant counts one acquire per grant.
            event.succeed()
            return event
        queue = self._waiting.setdefault(resource, deque())
        queue.append((owner, mode, event))
        self._grant_waiters(resource)
        return event

    def release(self, owner: Any, resource: Hashable) -> None:
        granted = self._granted.get(resource)
        if not granted:
            raise SimulationError(f"release of unheld lock on {resource!r}")
        remaining = [(o, m) for o, m in granted if o != owner]
        if len(remaining) == len(granted):
            raise SimulationError(
                f"{owner!r} does not hold a lock on {resource!r}"
            )
        for _ in range(len(granted) - len(remaining)):
            self.sim.tracer.lock("release", owner, resource)
        self._granted[resource] = remaining
        self._grant_waiters(resource)

    def release_if_held(self, owner: Any, resource: Hashable) -> bool:
        """Release *owner*'s lock if held; quiet no-op otherwise.

        Abort paths use this: an interrupted process's cleanup can race
        the engine-level lock sweep, and whichever runs second must not
        blow up on the already-released lock.
        """
        granted = self._granted.get(resource, [])
        if not any(o == owner for o, _m in granted):
            return False
        self.release(owner, resource)
        return True

    def release_all(self, owner: Any) -> None:
        """Drop every lock held by *owner* (end-of-transaction)."""
        for resource in list(self._granted):
            if any(o == owner for o, _m in self._granted[resource]):
                self.release(owner, resource)

    def release_where(self, predicate: Callable[[Any], bool]) -> int:
        """Sweep: drop every grant and queued wait whose owner matches.

        The abort path reclaims all of a dead query's locks with one
        call; returns the number of grants released.
        """
        released = 0
        for resource in list(self._granted):
            granted = self._granted[resource]
            keep = [(o, m) for o, m in granted if not predicate(o)]
            for owner, _mode in granted:
                if predicate(owner):
                    self.sim.tracer.lock("release", owner, resource)
                    released += 1
            self._granted[resource] = keep
        for resource, queue in self._waiting.items():
            survivors = deque(
                (o, m, e) for o, m, e in queue if not predicate(o)
            )
            self._waiting[resource] = survivors
        for resource in list(self._granted):
            self._grant_waiters(resource)
        return released

    # ------------------------------------------------------------------
    def _compatible(self, resource: Hashable, mode: LockMode) -> bool:
        granted = self._granted.get(resource, [])
        if not granted:
            return True
        if mode is LockMode.EXCLUSIVE:
            return False
        return all(m is LockMode.SHARED for _o, m in granted)

    def _grant_waiters(self, resource: Hashable) -> None:
        queue = self._waiting.get(resource)
        if not queue:
            return
        granted = self._granted.setdefault(resource, [])
        while queue:
            owner, mode, event = queue[0]
            # Skip requesters that died while waiting (triggered, or
            # interrupted: their resume callback is gone).
            if event.triggered or event.abandoned:
                queue.popleft()
                continue
            if not self._compatible(resource, mode):
                break  # FIFO: nobody overtakes the head
            queue.popleft()
            granted.append((owner, mode))
            self.sim.tracer.lock("acquire", owner, resource)
            event.succeed()
