"""The storage manager: the reproduction's stand-in for BerkeleyDB.

The paper builds QPipe on top of the BerkeleyDB storage manager, relying on
it for page access methods, the buffer pool, and lock management.  This
package implements those pieces from scratch:

* :mod:`repro.storage.page` -- pages, slots, and record identifiers.
* :mod:`repro.storage.file` -- the block store and heap files.
* :mod:`repro.storage.replacement` -- buffer replacement policies
  (LRU, MRU, Clock, LRU-K, 2Q, ARC; section 2.1 of the paper).
* :mod:`repro.storage.bufferpool` -- the buffer pool with in-flight read
  coalescing and pin counts.
* :mod:`repro.storage.btree` -- page-based B+trees (clustered secondary
  access paths and unclustered RID indexes).
* :mod:`repro.storage.locks` -- table-level shared/exclusive locks
  (section 4.3.4: updates route through locking).
* :mod:`repro.storage.manager` -- the facade the engines program against.
"""

from repro.storage.bufferpool import BufferPool
from repro.storage.btree import BPlusTree
from repro.storage.catalog import Catalog, IndexInfo, TableInfo
from repro.storage.file import BlockStore, HeapFile
from repro.storage.locks import LockManager, LockMode
from repro.storage.manager import StorageManager
from repro.storage.page import RID, Page
from repro.storage.partition import (
    PartitionInfo,
    hash_partition,
    partition_rows,
    range_partition,
    stable_hash,
)
from repro.storage.wal import (
    LogRecord,
    LogType,
    Transaction,
    TransactionManager,
    TransactionState,
    WriteAheadLog,
)
from repro.storage.replacement import (
    ARC,
    Clock,
    LRU,
    LRUK,
    MRU,
    ReplacementPolicy,
    TwoQ,
    make_policy,
)

__all__ = [
    "ARC",
    "BPlusTree",
    "BlockStore",
    "BufferPool",
    "Catalog",
    "Clock",
    "HeapFile",
    "IndexInfo",
    "LockManager",
    "LockMode",
    "LogRecord",
    "LogType",
    "LRU",
    "LRUK",
    "MRU",
    "Page",
    "PartitionInfo",
    "RID",
    "ReplacementPolicy",
    "StorageManager",
    "TableInfo",
    "hash_partition",
    "partition_rows",
    "range_partition",
    "stable_hash",
    "Transaction",
    "TransactionManager",
    "TransactionState",
    "TwoQ",
    "WriteAheadLog",
    "make_policy",
]
