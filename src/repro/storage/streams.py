"""Process-unique scan-stream identities.

The buffer pool keys its circular-scan rings by a caller-chosen
``stream`` value and only ever compares streams for (in)equality --
but ring entries *outlive* the scan that made them.  Using ``id(op)``
as the stream (the obvious choice) is therefore a latent
nondeterminism: once the op is garbage-collected, a later scan's
object can be allocated at the same address, accidentally match the
dead scan's leftover ring entries, and turn its cold misses into hits
-- a divergence that depends on allocator layout, not on the schedule.

Every engine draws stream identities from this counter instead: values
are unique for the life of the process, so a dead scan's ring entries
can never be matched again.  The tag keeps streams disjoint from the
("q", qid)-style lock-owner tuples some engines sweep by prefix.
"""

from __future__ import annotations

from itertools import count
from typing import Tuple

_ids = count(1)


def next_stream() -> Tuple[str, int]:
    """A fresh scan-stream identity, never equal to any earlier one."""
    # Designated impurity: the counter only mints process-unique ids;
    # no simulated behavior branches on their numeric values, so cell
    # outputs stay reproducible across warm/cold processes.
    return ("scan-stream", next(_ids))  # simlint: disable=IPR201
