"""The block store and heap files.

The :class:`BlockStore` is the "platter": an in-memory array of block
payloads per file.  It holds the *content*; the :class:`~repro.hw.disk.Disk`
charges the *time*.  The buffer pool mediates between the two.

A :class:`HeapFile` is a sequence of :class:`~repro.storage.page.Page`
blocks belonging to one table (or one sorted run, or one B+tree level --
anything page-shaped).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.faults.errors import PageCorruptError
from repro.storage.page import Page, RID


class BlockStore:
    """All files' block payloads, addressed by (file_id, block_no).

    File ids are allocated monotonically.  Payloads are arbitrary objects:
    :class:`Page` for heap files, node dicts for B+trees.

    Corruption is simulated with per-block marks rather than by mutating
    payloads: pages are shared live objects here, so a content checksum
    would legitimately change under updates.  A marked block fails
    :meth:`verify_block` (the buffer pool verifies after every disk read);
    a *transient* mark clears on first detection -- the retry then reads a
    good copy -- while a *permanent* one persists.
    """

    def __init__(self):
        self._files: Dict[int, List[Any]] = {}
        self._names: Dict[int, str] = {}
        self._next_id = 0
        #: (file_id, block_no) -> permanent? for corruption marks.
        self._corrupt: Dict[Tuple[int, int], bool] = {}

    def create_file(self, name: str = "file") -> int:
        file_id = self._next_id
        self._next_id += 1
        self._files[file_id] = []
        self._names[file_id] = name
        return file_id

    def drop_file(self, file_id: int) -> None:
        self._files.pop(file_id, None)
        self._names.pop(file_id, None)

    def file_name(self, file_id: int) -> str:
        return self._names.get(file_id, f"file#{file_id}")

    def num_blocks(self, file_id: int) -> int:
        return len(self._files[file_id])

    def append_block(self, file_id: int, payload: Any) -> int:
        blocks = self._files[file_id]
        blocks.append(payload)
        return len(blocks) - 1

    def read_block(self, file_id: int, block_no: int) -> Any:
        blocks = self._files[file_id]
        if not 0 <= block_no < len(blocks):
            raise IndexError(
                f"block {block_no} out of range for {self.file_name(file_id)} "
                f"({len(blocks)} blocks)"
            )
        return blocks[block_no]

    def write_block(self, file_id: int, block_no: int, payload: Any) -> None:
        blocks = self._files[file_id]
        if not 0 <= block_no < len(blocks):
            raise IndexError(f"block {block_no} out of range")
        blocks[block_no] = payload

    def files(self) -> Iterator[int]:
        return iter(self._files)

    # -- corruption marks (fault injection) ------------------------------
    def corrupt_block(
        self, file_id: int, block_no: int, permanent: bool = False
    ) -> None:
        """Mark a block so its next verification fails its checksum."""
        self._corrupt[(file_id, block_no)] = permanent

    def verify_block(self, file_id: int, block_no: int) -> None:
        """Checksum-verify a block; raises :exc:`PageCorruptError` if bad.

        A transient mark is consumed by the failed verification (the
        next read sees a clean copy); a permanent mark stays.
        """
        permanent = self._corrupt.get((file_id, block_no))
        if permanent is None:
            return
        if not permanent:
            del self._corrupt[(file_id, block_no)]
        raise PageCorruptError(file_id, block_no, transient=not permanent)


class HeapFile:
    """A table's pages inside a :class:`BlockStore`.

    Rows are appended page by page; the file never reuses tombstoned
    slots (simple, and sufficient for the read-mostly workloads the paper
    evaluates).
    """

    def __init__(self, store: BlockStore, name: str, rows_per_page: int):
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be >= 1")
        self.store = store
        self.name = name
        self.rows_per_page = rows_per_page
        self.file_id = store.create_file(name)
        self._row_count = 0

    @property
    def num_pages(self) -> int:
        return self.store.num_blocks(self.file_id)

    @property
    def num_rows(self) -> int:
        return self._row_count

    # -- bulk, non-timed operations (dataset loading) --------------------
    def append_row(self, row: tuple) -> RID:
        """Append a row, creating a new page when the last one is full.

        This is an *untimed* operation used for dataset loading; timed
        inserts go through the storage manager, which charges the disk.
        """
        if self.num_pages == 0:
            self.store.append_block(self.file_id, Page(self.rows_per_page))
        last_no = self.num_pages - 1
        page: Page = self.store.read_block(self.file_id, last_no)
        if page.full:
            page = Page(self.rows_per_page)
            last_no = self.store.append_block(self.file_id, page)
        slot = page.insert(row)
        self._row_count += 1
        return RID(last_no, slot)

    def bulk_load(self, rows) -> int:
        """Append many rows; returns the number loaded.

        Fills whole pages directly instead of taking the per-row append
        path (a read-modify-write per row); the resulting page/slot
        layout is identical.
        """
        rows = rows if isinstance(rows, list) else list(rows)
        total = len(rows)
        i = 0
        if self.num_pages:
            last_no = self.num_pages - 1
            i += self.store.read_block(self.file_id, last_no).extend(rows)
        per = self.rows_per_page
        while i < total:
            page = Page(per)
            taken = page.extend(rows[i:i + per])
            self.store.append_block(self.file_id, page)
            i += taken
        self._row_count += total
        return total

    # -- direct (untimed) access, used by loaders and tests --------------
    def page(self, block_no: int) -> Page:
        return self.store.read_block(self.file_id, block_no)

    def fetch(self, rid: RID) -> tuple:
        row = self.page(rid.block_no).get(rid.slot)
        if row is None:
            raise KeyError(f"{rid} is a tombstone in {self.name}")
        return row

    def all_rows(self) -> List[tuple]:
        """Every live row in file order (untimed; for tests/loaders)."""
        rows: List[tuple] = []
        for block_no in range(self.num_pages):
            rows.extend(self.page(block_no).rows())
        return rows

    def rids_and_rows(self) -> Iterator[Tuple[RID, tuple]]:
        for block_no in range(self.num_pages):
            for slot, row in self.page(block_no).items():
                yield RID(block_no, slot), row

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<HeapFile {self.name}: {self.num_rows} rows, {self.num_pages} pages>"
