"""Logical query plans.

A plan is a tree of operator nodes, one per relational operation, exactly
mirroring the paper's Figure 5: scans and index scans at the leaves,
joins / sorts / aggregates above them.  Both engines interpret the same
trees; QPipe's packet dispatcher creates one packet per node.

Every node computes:

* its output :class:`~repro.relational.schema.Schema` given a catalog, and
* a canonical :meth:`~PlanNode.signature` -- the "encoded argument list"
  the OSP coordinator compares when a new packet queues up (section 4.3).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.relational.expressions import AggSpec, Expr
from repro.relational.schema import Schema


class PlanNode:
    """Base class for logical plan nodes."""

    def __init__(self, children: Sequence["PlanNode"]):
        self.children: List[PlanNode] = list(children)

    # -- overridden per node -------------------------------------------
    def output_schema(self, catalog) -> Schema:
        raise NotImplementedError

    def _own_signature(self, catalog) -> str:
        raise NotImplementedError

    #: Operator label used to route packets to micro-engines.
    op_name = "plan"

    # -- shared ----------------------------------------------------------
    def signature(self, catalog) -> str:
        """Canonical encoding of the whole subtree rooted here."""
        inner = ",".join(c.signature(catalog) for c in self.children)
        own = self._own_signature(catalog)
        return f"{own}[{inner}]" if inner else own

    def __repr__(self):  # pragma: no cover - debugging aid
        kids = ", ".join(repr(c) for c in self.children)
        return f"{type(self).__name__}({kids})"


def walk_plan(node: PlanNode) -> Iterator[PlanNode]:
    """Pre-order traversal of a plan tree."""
    yield node
    for child in node.children:
        yield from walk_plan(child)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------
class TableScan(PlanNode):
    """A full scan of a base table.

    Args:
        table: table name.
        predicate: optional selection applied during the scan.
        project: optional list of output column names.
        ordered: when True the consumer requires rows in stored table
            order, which turns the scan's overlap class from *linear*
            into *spike* (paper section 3.2).
        alias: optional prefix qualifying output column names (needed when
            a query reads a table twice, or joins Wisconsin tables whose
            column names collide).
        resume: recovery-only ``(start_page, page_count)``: scan exactly
            ``page_count`` pages starting at ``start_page``, wrapping at
            EOF -- the page order a consumer resumed mid-pass would have
            seen (:mod:`repro.lineage`).  A resumed scan never attaches
            to a shared circular scan (its frontier is private), and the
            signature suffix keeps OSP and the result cache from pairing
            it with full scans.
    """

    op_name = "scan"

    def __init__(
        self,
        table: str,
        predicate: Optional[Expr] = None,
        project: Optional[Sequence[str]] = None,
        ordered: bool = False,
        alias: Optional[str] = None,
        resume: Optional[Tuple[int, int]] = None,
    ):
        super().__init__([])
        self.table = table
        self.predicate = predicate
        self.project = list(project) if project is not None else None
        self.ordered = ordered
        self.alias = alias
        self.resume = resume

    def output_schema(self, catalog) -> Schema:
        schema = catalog.table_schema(self.table)
        if self.project is not None:
            schema = schema.project(self.project)
        if self.alias:
            schema = schema.qualified(self.alias)
        return schema

    def _own_signature(self, catalog) -> str:
        pred = self.predicate.signature() if self.predicate else "true"
        proj = ",".join(self.project) if self.project else "*"
        order = "ordered" if self.ordered else "any"
        # Default signatures stay byte-identical to pre-resume builds
        # (OSP sharing and the result cache compare these strings).
        if self.resume is None:
            return f"scan({self.table};{pred};{proj};{order})"
        start, count = self.resume
        return (
            f"scan({self.table};{pred};{proj};{order};"
            f"resume={start}+{count})"
        )


class IndexScan(PlanNode):
    """An index scan over a clustered or unclustered B+tree.

    For a clustered index the scan emits rows in key order directly from
    the (key-ordered) heap file.  For an unclustered index it runs the
    paper's two phases: build the matching RID list (full overlap), sort
    it by page number, then fetch pages (linear/spike overlap).
    """

    op_name = "iscan"

    def __init__(
        self,
        table: str,
        index: str,
        lo: Any = None,
        hi: Any = None,
        predicate: Optional[Expr] = None,
        project: Optional[Sequence[str]] = None,
        ordered: bool = False,
        alias: Optional[str] = None,
    ):
        super().__init__([])
        self.table = table
        self.index = index
        self.lo = lo
        self.hi = hi
        self.predicate = predicate
        self.project = list(project) if project is not None else None
        self.ordered = ordered
        self.alias = alias

    def output_schema(self, catalog) -> Schema:
        schema = catalog.table_schema(self.table)
        if self.project is not None:
            schema = schema.project(self.project)
        if self.alias:
            schema = schema.qualified(self.alias)
        return schema

    def _own_signature(self, catalog) -> str:
        pred = self.predicate.signature() if self.predicate else "true"
        proj = ",".join(self.project) if self.project else "*"
        order = "ordered" if self.ordered else "any"
        return (
            f"iscan({self.table};{self.index};{self.lo!r}..{self.hi!r};"
            f"{pred};{proj};{order})"
        )


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------
class Filter(PlanNode):
    """Row selection on an arbitrary predicate (residual filters above
    joins, e.g. TPC-H Q19's bracketed OR conditions)."""

    op_name = "filter"

    def __init__(self, child: PlanNode, predicate: Expr):
        super().__init__([child])
        self.predicate = predicate

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog) -> Schema:
        return self.child.output_schema(catalog)

    def _own_signature(self, catalog) -> str:
        return f"filter({self.predicate.signature()})"


class Project(PlanNode):
    """Column projection (and optional computed expressions)."""

    op_name = "project"

    def __init__(
        self,
        child: PlanNode,
        names: Sequence[str],
        exprs: Optional[Sequence[Expr]] = None,
    ):
        super().__init__([child])
        self.names = list(names)
        self.exprs = list(exprs) if exprs is not None else None
        if self.exprs is not None and len(self.exprs) != len(self.names):
            raise ValueError("names and exprs must align")

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog) -> Schema:
        child = self.child.output_schema(catalog)
        if self.exprs is None:
            return child.project(self.names)
        from repro.relational.schema import Column

        return Schema(Column(name, "float") for name in self.names)

    def _own_signature(self, catalog) -> str:
        if self.exprs is None:
            return f"project({','.join(self.names)})"
        encoded = ",".join(e.signature() for e in self.exprs)
        return f"project({','.join(self.names)};{encoded})"


class Sort(PlanNode):
    """Sort on one or more key columns."""

    op_name = "sort"

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        descending: bool = False,
    ):
        super().__init__([child])
        self.keys = list(keys)
        self.descending = descending

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog) -> Schema:
        return self.child.output_schema(catalog)

    def _own_signature(self, catalog) -> str:
        direction = "desc" if self.descending else "asc"
        return f"sort({','.join(self.keys)};{direction})"


class Aggregate(PlanNode):
    """Single-group aggregation producing exactly one output row."""

    op_name = "agg"

    def __init__(self, child: PlanNode, aggs: Sequence[AggSpec]):
        super().__init__([child])
        if not aggs:
            raise ValueError("Aggregate needs at least one AggSpec")
        self.aggs = list(aggs)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog) -> Schema:
        from repro.relational.schema import Column

        return Schema(Column(a.name, "float") for a in self.aggs)

    def _own_signature(self, catalog) -> str:
        return "agg(" + ";".join(a.signature() for a in self.aggs) + ")"


class GroupBy(PlanNode):
    """Hash-based grouping with aggregates per group."""

    op_name = "groupby"

    def __init__(
        self,
        child: PlanNode,
        group_cols: Sequence[str],
        aggs: Sequence[AggSpec],
    ):
        super().__init__([child])
        if not group_cols:
            raise ValueError("GroupBy needs at least one grouping column")
        self.group_cols = list(group_cols)
        self.aggs = list(aggs)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog) -> Schema:
        from repro.relational.schema import Column

        child = self.child.output_schema(catalog)
        group = [child.column(c) for c in self.group_cols]
        return Schema(
            group + [Column(a.name, "float") for a in self.aggs]
        )

    def _own_signature(self, catalog) -> str:
        aggs = ";".join(a.signature() for a in self.aggs)
        return f"groupby({','.join(self.group_cols)};{aggs})"


class Limit(PlanNode):
    """Emit at most *count* rows (after skipping *offset*)."""

    op_name = "limit"

    def __init__(self, child: PlanNode, count: int, offset: int = 0):
        super().__init__([child])
        if count < 0 or offset < 0:
            raise ValueError("count and offset must be non-negative")
        self.count = count
        self.offset = offset

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog) -> Schema:
        return self.child.output_schema(catalog)

    def _own_signature(self, catalog) -> str:
        return f"limit({self.count};{self.offset})"


class Distinct(PlanNode):
    """Remove duplicate rows (first occurrence wins, streaming)."""

    op_name = "distinct"

    def __init__(self, child: PlanNode):
        super().__init__([child])

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog) -> Schema:
        return self.child.output_schema(catalog)

    def _own_signature(self, catalog) -> str:
        return "distinct()"


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------
class _EquiJoin(PlanNode):
    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: str,
        right_key: str,
    ):
        super().__init__([left, right])
        self.left_key = left_key
        self.right_key = right_key

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]

    def output_schema(self, catalog) -> Schema:
        return self.left.output_schema(catalog).concat(
            self.right.output_schema(catalog)
        )

    def _own_signature(self, catalog) -> str:
        return f"{self.op_name}({self.left_key}={self.right_key})"


class HashJoin(_EquiJoin):
    """Hybrid hash join: build on the left input, probe with the right.

    Overlap classes (section 3.2): the build phase is *full*, the probe
    phase is *step* (extensible via output buffering).
    """

    op_name = "hashjoin"


class MergeJoin(_EquiJoin):
    """Merge join over inputs already ordered on the join keys (*step*)."""

    op_name = "mergejoin"


class SemiJoin(_EquiJoin):
    """Left rows with at least one right match (SQL EXISTS).

    Output schema is the left input's alone; the right side is consumed
    only to build its key set (a *full*-overlap phase).  TPC-H Q4's
    EXISTS subquery is exactly this shape.
    """

    op_name = "semijoin"

    def output_schema(self, catalog) -> Schema:
        return self.left.output_schema(catalog)


class AntiJoin(_EquiJoin):
    """Left rows with no right match (SQL NOT EXISTS)."""

    op_name = "antijoin"

    def output_schema(self, catalog) -> Schema:
        return self.left.output_schema(catalog)


class LeftOuterJoin(_EquiJoin):
    """Hash left-outer join: unmatched left rows pad the right side with
    NULLs (None).  TPC-H Q13's customer LEFT JOIN orders is this shape."""

    op_name = "outerjoin"


class NLJoin(PlanNode):
    """Nested-loop join with an arbitrary predicate (*step* overlap)."""

    op_name = "nljoin"

    def __init__(self, left: PlanNode, right: PlanNode, predicate: Expr):
        super().__init__([left, right])
        self.predicate = predicate

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]

    def output_schema(self, catalog) -> Schema:
        return self.left.output_schema(catalog).concat(
            self.right.output_schema(catalog)
        )

    def _own_signature(self, catalog) -> str:
        return f"nljoin({self.predicate.signature()})"


# ---------------------------------------------------------------------------
# Exchange operators (sharded execution; DESIGN.md section 16)
# ---------------------------------------------------------------------------
class Exchange(PlanNode):
    """Base of the data-movement operators that glue plan fragments
    together across shard boundaries.

    An exchange never changes row contents -- only which host rows live
    on -- so its output schema is its child's.  The distributed planner
    (:func:`repro.sql.planner.plan_distributed`) inserts these nodes to
    annotate where columnar batches cross the network; the sharded
    executor (:mod:`repro.shard`) implements their data movement over
    the :class:`~repro.hw.net.Network` model.
    """

    op_name = "exchange"

    def __init__(self, child: PlanNode):
        super().__init__([child])

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog) -> Schema:
        return self.child.output_schema(catalog)


class Gather(Exchange):
    """N per-shard streams -> the coordinator, strictly in shard order.

    Shard 0's rows arrive first, then shard 1's, and so on -- regardless
    of which shard finishes first.  Over range partitions (contiguous
    slices of stored row order) this reproduces the single-host row
    order exactly, which is what keeps order-sensitive float
    accumulations byte-identical to the unsharded run.
    """

    op_name = "gather"

    def _own_signature(self, catalog) -> str:
        return "gather()"


class Broadcast(Exchange):
    """Every shard's child rows -> every other shard (join build sides).

    Receivers assemble the full relation by concatenating per-source
    streams in shard order, i.e. in global stored order.
    """

    op_name = "broadcast"

    def _own_signature(self, catalog) -> str:
        return "broadcast()"


class Shuffle(Exchange):
    """Hash re-partition: rows route to shard ``stable_hash(key) % N``.

    Receivers process per-source streams in shard order, so each
    bucket's stream is the global-order subsequence of rows hashing to
    it -- deterministic and engine-independent.
    """

    op_name = "shuffle"

    def __init__(self, child: PlanNode, key: str):
        super().__init__(child)
        self.key = key

    def _own_signature(self, catalog) -> str:
        return f"shuffle({self.key})"


# ---------------------------------------------------------------------------
# Updates (routed to the no-OSP update micro-engine; section 4.3.4)
# ---------------------------------------------------------------------------
class InsertRows(PlanNode):
    """Insert literal rows into a table."""

    op_name = "update"

    def __init__(self, table: str, rows: Sequence[tuple]):
        super().__init__([])
        self.table = table
        self.rows = list(rows)

    def output_schema(self, catalog) -> Schema:
        return Schema.of("rows_affected:int")

    def _own_signature(self, catalog) -> str:
        # Updates are never shared: make the signature unique per object.
        return f"insert({self.table};id={id(self)})"


class DeleteRows(PlanNode):
    """Delete rows matching a predicate (None deletes everything)."""

    op_name = "update"

    def __init__(self, table: str, predicate: Optional[Expr] = None):
        super().__init__([])
        self.table = table
        self.predicate = predicate

    def output_schema(self, catalog) -> Schema:
        return Schema.of("rows_affected:int")

    def _own_signature(self, catalog) -> str:
        return f"delete({self.table};id={id(self)})"


class UpdateRows(PlanNode):
    """Update rows matching a predicate via a row -> row function."""

    op_name = "update"

    def __init__(
        self,
        table: str,
        predicate: Optional[Expr],
        apply: Callable[[tuple], tuple],
    ):
        super().__init__([])
        self.table = table
        self.predicate = predicate
        self.apply = apply

    def output_schema(self, catalog) -> Schema:
        return Schema.of("rows_affected:int")

    def _own_signature(self, catalog) -> str:
        return f"update({self.table};id={id(self)})"
