"""Schemas and columns.

Rows are plain Python tuples; a :class:`Schema` names and types the
positions.  The *declared* byte width of each column sizes the table on
the simulated disk (8 KB pages), keeping dataset geometry proportional to
the paper's 200-byte Wisconsin tuples and dbgen's TPC-H rows.

Dates are stored as integer days since 1970-01-01 so that date arithmetic
in predicates stays cheap and comparable.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: Default widths per declared type, in bytes.
TYPE_WIDTHS = {
    "int": 4,
    "float": 8,
    "date": 4,
    "str": 16,
}

VALID_TYPES = frozenset(TYPE_WIDTHS)


@dataclass(frozen=True)
class Column:
    """One named, typed column with a declared byte width."""

    name: str
    type: str = "int"
    width: int = 0

    def __post_init__(self):
        if self.type not in VALID_TYPES:
            raise ValueError(
                f"unknown column type {self.type!r}; expected one of "
                f"{sorted(VALID_TYPES)}"
            )
        if self.width <= 0:
            object.__setattr__(self, "width", TYPE_WIDTHS[self.type])

    def renamed(self, name: str) -> "Column":
        return Column(name, self.type, self.width)


class Schema:
    """An ordered, named tuple layout."""

    __slots__ = ("columns", "_index")

    def __init__(self, columns: Iterable[Column]):
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {}
        for i, col in enumerate(self.columns):
            if col.name in self._index:
                raise ValueError(f"duplicate column name: {col.name!r}")
            self._index[col.name] = i

    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *specs: str) -> "Schema":
        """Shorthand: ``Schema.of("a:int", "b:str:25", "c:date")``."""
        columns = []
        for spec in specs:
            parts = spec.split(":")
            name = parts[0]
            ctype = parts[1] if len(parts) > 1 else "int"
            width = int(parts[2]) if len(parts) > 2 else 0
            columns.append(Column(name, ctype, width))
        return cls(columns)

    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        return [col.name for col in self.columns]

    @property
    def row_width(self) -> int:
        """Declared bytes per row (sizes the table on disk)."""
        return sum(col.width for col in self.columns)

    def __len__(self):
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other):
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self):
        return hash(self.columns)

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; have {self.names}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    # ------------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema keeping *names* in the given order."""
        return Schema(self.column(name) for name in names)

    def qualified(self, prefix: str) -> "Schema":
        """A copy with every column renamed to ``prefix.name``."""
        return Schema(
            col.renamed(f"{prefix}.{col.name}") for col in self.columns
        )

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output: this side's columns then the other's."""
        return Schema(self.columns + other.columns)

    def projector(self, names: Sequence[str]):
        """A fast row -> row function selecting *names* in order."""
        idxs = [self.index_of(name) for name in names]
        if len(idxs) == 1:
            get = operator.itemgetter(idxs[0])
            return lambda row: (get(row),)
        # itemgetter with several indices returns the tuple directly,
        # without a per-row generator expression.
        return operator.itemgetter(*idxs)

    def signature(self) -> str:
        return ",".join(f"{c.name}:{c.type}" for c in self.columns)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Schema({self.signature()})"
