"""Scalar expressions, predicates, and aggregate specifications.

Expressions *bind* against a schema to produce plain Python callables
(row -> value), so per-tuple evaluation costs one closure call.  Every
expression also has a canonical :meth:`~Expr.signature`, which the OSP
coordinator compares to detect overlapping computations (two packets
overlap only when their argument lists encode identically -- paper
section 4.3: "a quick check of the encoded argument list").
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Sequence, Set, Tuple

from repro.relational.schema import Schema

RowFn = Callable[[tuple], Any]

_CMP_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Expr:
    """Base class for scalar expressions."""

    def bind(self, schema: Schema) -> RowFn:
        """Compile to a row -> value callable against *schema*."""
        raise NotImplementedError

    def columns(self) -> Set[str]:
        """The column names this expression references."""
        raise NotImplementedError

    def signature(self) -> str:
        """Canonical encoding for overlap detection."""
        raise NotImplementedError

    # Operator sugar so plans read naturally: Col("a") > 5, (p1 & p2), etc.
    def __eq__(self, other):  # type: ignore[override]
        return Cmp("==", self, _lift(other))

    def __ne__(self, other):  # type: ignore[override]
        return Cmp("!=", self, _lift(other))

    def __lt__(self, other):
        return Cmp("<", self, _lift(other))

    def __le__(self, other):
        return Cmp("<=", self, _lift(other))

    def __gt__(self, other):
        return Cmp(">", self, _lift(other))

    def __ge__(self, other):
        return Cmp(">=", self, _lift(other))

    def __add__(self, other):
        return Arith("+", self, _lift(other))

    def __sub__(self, other):
        return Arith("-", self, _lift(other))

    def __mul__(self, other):
        return Arith("*", self, _lift(other))

    def __truediv__(self, other):
        return Arith("/", self, _lift(other))

    def __and__(self, other):
        return And(self, other)

    def __or__(self, other):
        return Or(self, other)

    def __invert__(self):
        return Not(self)

    def __hash__(self):
        return hash(self.signature())


def _lift(value: Any) -> "Expr":
    return value if isinstance(value, Expr) else Const(value)


class Col(Expr):
    """A column reference by name."""

    def __init__(self, name: str):
        self.name = name

    def bind(self, schema):
        idx = schema.index_of(self.name)
        return lambda row: row[idx]

    def columns(self):
        return {self.name}

    def signature(self):
        return f"col({self.name})"

    def __repr__(self):
        return f"Col({self.name!r})"


class Const(Expr):
    """A literal constant."""

    def __init__(self, value: Any):
        self.value = value

    def bind(self, schema):
        value = self.value
        return lambda row: value

    def columns(self):
        return set()

    def signature(self):
        return f"const({self.value!r})"

    def __repr__(self):
        return f"Const({self.value!r})"


def _bind_binary(fn, left: "Expr", right: "Expr", schema):
    """Bound evaluator for ``fn(left, right)``, specialised by operand shape.

    Column and constant operands are inlined as a tuple index / captured
    value instead of a nested bound-lambda call; bound predicates run
    once per row on the scan hot path, so the two saved frames per row
    are the bulk of predicate cost (DESIGN.md section 10).
    """
    if isinstance(left, Col):
        li = schema.index_of(left.name)
        if isinstance(right, Const):
            rv = right.value
            return lambda row: fn(row[li], rv)
        if isinstance(right, Col):
            ri = schema.index_of(right.name)
            return lambda row: fn(row[li], row[ri])
        rfn = right.bind(schema)
        return lambda row: fn(row[li], rfn(row))
    if isinstance(right, Const):
        lfn = left.bind(schema)
        rv = right.value
        return lambda row: fn(lfn(row), rv)
    lfn, rfn = left.bind(schema), right.bind(schema)
    return lambda row: fn(lfn(row), rfn(row))


class Cmp(Expr):
    """A binary comparison."""

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, schema):
        fn = _CMP_OPS[self.op]
        return _bind_binary(fn, self.left, self.right, schema)

    def columns(self):
        return self.left.columns() | self.right.columns()

    def signature(self):
        return f"({self.left.signature()}{self.op}{self.right.signature()})"

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class Arith(Expr):
    """Binary arithmetic."""

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _ARITH_OPS:
            raise ValueError(f"unknown arithmetic op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def bind(self, schema):
        fn = _ARITH_OPS[self.op]
        return _bind_binary(fn, self.left, self.right, schema)

    def columns(self):
        return self.left.columns() | self.right.columns()

    def signature(self):
        return f"({self.left.signature()}{self.op}{self.right.signature()})"


class And(Expr):
    def __init__(self, *terms: Expr):
        if not terms:
            raise ValueError("And needs at least one term")
        self.terms = terms

    def bind(self, schema):
        # Bound predicates run once per row on the scan/filter hot path;
        # the common 1-3 term shapes skip the generator-expression frame.
        fns = [t.bind(schema) for t in self.terms]
        if len(fns) == 1:
            f0 = fns[0]
            return lambda row: bool(f0(row))
        if len(fns) == 2:
            f0, f1 = fns
            return lambda row: bool(f0(row) and f1(row))
        if len(fns) == 3:
            f0, f1, f2 = fns
            return lambda row: bool(f0(row) and f1(row) and f2(row))
        return lambda row: all(fn(row) for fn in fns)

    def columns(self):
        out: Set[str] = set()
        for t in self.terms:
            out |= t.columns()
        return out

    def signature(self):
        return "and(" + "&".join(t.signature() for t in self.terms) + ")"


class Or(Expr):
    def __init__(self, *terms: Expr):
        if not terms:
            raise ValueError("Or needs at least one term")
        self.terms = terms

    def bind(self, schema):
        fns = [t.bind(schema) for t in self.terms]
        if len(fns) == 1:
            f0 = fns[0]
            return lambda row: bool(f0(row))
        if len(fns) == 2:
            f0, f1 = fns
            return lambda row: bool(f0(row) or f1(row))
        if len(fns) == 3:
            f0, f1, f2 = fns
            return lambda row: bool(f0(row) or f1(row) or f2(row))
        return lambda row: any(fn(row) for fn in fns)

    def columns(self):
        out: Set[str] = set()
        for t in self.terms:
            out |= t.columns()
        return out

    def signature(self):
        return "or(" + "|".join(t.signature() for t in self.terms) + ")"


class Not(Expr):
    def __init__(self, term: Expr):
        self.term = term

    def bind(self, schema):
        fn = self.term.bind(schema)
        return lambda row: not fn(row)

    def columns(self):
        return self.term.columns()

    def signature(self):
        return f"not({self.term.signature()})"


class Between(Expr):
    """lo <= expr <= hi (inclusive both ends, like SQL BETWEEN)."""

    def __init__(self, expr: Expr, lo: Any, hi: Any):
        self.expr = _lift(expr)
        self.lo = lo
        self.hi = hi

    def bind(self, schema):
        fn = self.expr.bind(schema)
        lo, hi = self.lo, self.hi
        return lambda row: lo <= fn(row) <= hi

    def columns(self):
        return self.expr.columns()

    def signature(self):
        return f"between({self.expr.signature()},{self.lo!r},{self.hi!r})"


class InList(Expr):
    """expr IN (v1, v2, ...)."""

    def __init__(self, expr: Expr, values: Sequence[Any]):
        self.expr = _lift(expr)
        self.values = frozenset(values)

    def bind(self, schema):
        fn = self.expr.bind(schema)
        values = self.values
        return lambda row: fn(row) in values

    def columns(self):
        return self.expr.columns()

    def signature(self):
        encoded = ",".join(repr(v) for v in sorted(self.values, key=repr))
        return f"in({self.expr.signature()},[{encoded}])"


class Like(Expr):
    """A small LIKE: '%x%' contains, 'x%' prefix, '%x' suffix, else equal."""

    def __init__(self, expr: Expr, pattern: str):
        self.expr = _lift(expr)
        self.pattern = pattern

    def bind(self, schema):
        fn = self.expr.bind(schema)
        pattern = self.pattern
        if pattern.startswith("%") and pattern.endswith("%") and len(pattern) > 1:
            needle = pattern[1:-1]
            return lambda row: needle in fn(row)
        if pattern.endswith("%"):
            prefix = pattern[:-1]
            return lambda row: fn(row).startswith(prefix)
        if pattern.startswith("%"):
            suffix = pattern[1:]
            return lambda row: fn(row).endswith(suffix)
        return lambda row: fn(row) == pattern

    def columns(self):
        return self.expr.columns()

    def signature(self):
        return f"like({self.expr.signature()},{self.pattern!r})"


class If(Expr):
    """SQL CASE WHEN cond THEN a ELSE b END (two-armed)."""

    def __init__(self, cond: Expr, then: Any, otherwise: Any):
        self.cond = cond
        self.then = _lift(then)
        self.otherwise = _lift(otherwise)

    def bind(self, schema):
        cond = self.cond.bind(schema)
        then, other = self.then.bind(schema), self.otherwise.bind(schema)
        return lambda row: then(row) if cond(row) else other(row)

    def columns(self):
        return (
            self.cond.columns() | self.then.columns() | self.otherwise.columns()
        )

    def signature(self):
        return (
            f"if({self.cond.signature()},{self.then.signature()},"
            f"{self.otherwise.signature()})"
        )


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------
AGG_FUNCS = ("sum", "min", "max", "count", "avg")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``func`` over ``expr``, output column ``name``.

    ``count`` may take ``expr=None`` for COUNT(*).
    """

    func: str
    expr: Any = None  # Expr or None
    name: str = ""

    def __post_init__(self):
        if self.func not in AGG_FUNCS:
            raise ValueError(
                f"unknown aggregate {self.func!r}; expected one of {AGG_FUNCS}"
            )
        if self.expr is None and self.func != "count":
            raise ValueError(f"{self.func} requires an expression")
        if not self.name:
            object.__setattr__(self, "name", f"{self.func}")

    def signature(self) -> str:
        inner = self.expr.signature() if self.expr is not None else "*"
        return f"{self.func}({inner})"

    def make_state(self) -> "AggState":
        return AggState(self)


class AggState:
    """Mutable accumulator for one aggregate over one group."""

    __slots__ = ("spec", "count", "total", "best")

    def __init__(self, spec: AggSpec):
        self.spec = spec
        self.count = 0
        self.total = 0
        self.best = None

    def add(self, value: Any) -> None:
        func = self.spec.func
        self.count += 1
        if func in ("sum", "avg"):
            self.total += value
        elif func == "min":
            if self.best is None or value < self.best:
                self.best = value
        elif func == "max":
            if self.best is None or value > self.best:
                self.best = value
        # count needs nothing beyond the counter.

    def merge(self, other: "AggState") -> None:
        func = self.spec.func
        self.count += other.count
        if func in ("sum", "avg"):
            self.total += other.total
        elif func == "min":
            if other.best is not None and (
                self.best is None or other.best < self.best
            ):
                self.best = other.best
        elif func == "max":
            if other.best is not None and (
                self.best is None or other.best > self.best
            ):
                self.best = other.best

    def result(self) -> Any:
        func = self.spec.func
        if func == "count":
            return self.count
        if func == "sum":
            return self.total
        if func == "avg":
            return self.total / self.count if self.count else None
        return self.best


def bind_aggregates(
    specs: Sequence[AggSpec], schema: Schema
) -> Tuple[list, list]:
    """Bind aggregate input expressions; returns (specs, value_fns)."""
    fns = []
    for spec in specs:
        if spec.expr is None:
            fns.append(lambda row: 1)
        else:
            fns.append(spec.expr.bind(schema))
    return list(specs), fns
