"""The relational layer: schemas, expressions, logical plans, signatures.

This layer is engine-agnostic: both the QPipe engine (`repro.engine`) and
the conventional iterator engine (`repro.baseline`) interpret the same
plan trees, which is what makes the paper's apples-to-apples comparison
possible.
"""

from repro.relational.expressions import (
    AggSpec,
    And,
    Arith,
    Between,
    Col,
    Cmp,
    Const,
    Expr,
    If,
    InList,
    Like,
    Not,
    Or,
)
from repro.relational.plans import (
    Aggregate,
    AntiJoin,
    DeleteRows,
    Distinct,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    InsertRows,
    LeftOuterJoin,
    Limit,
    MergeJoin,
    NLJoin,
    PlanNode,
    Project,
    SemiJoin,
    Sort,
    TableScan,
    UpdateRows,
    walk_plan,
)
from repro.relational.schema import Column, Schema

__all__ = [
    "AggSpec",
    "Aggregate",
    "And",
    "AntiJoin",
    "Arith",
    "Between",
    "Col",
    "Cmp",
    "Column",
    "Const",
    "DeleteRows",
    "Distinct",
    "Expr",
    "Filter",
    "GroupBy",
    "If",
    "HashJoin",
    "IndexScan",
    "InList",
    "InsertRows",
    "LeftOuterJoin",
    "Like",
    "Limit",
    "MergeJoin",
    "NLJoin",
    "Not",
    "Or",
    "PlanNode",
    "Project",
    "Schema",
    "SemiJoin",
    "Sort",
    "TableScan",
    "UpdateRows",
    "walk_plan",
]
