"""A queued disk model with sequential/seek service times.

The disk is the bottleneck resource in every experiment of the paper
("the workload is disk-bound"), so its model is deliberately explicit:

* One request is serviced at a time (queue depth 1); concurrent readers
  queue FIFO, which is how independent scans slow each other down.
* A request to block ``b`` of the same file whose previous serviced block
  was ``b - 1`` pays only the transfer time; any other request pays an
  additional seek.  Interleaved scans therefore thrash the head exactly
  as they do on a real drive, and a *shared* circular scan recovers the
  sequential rate -- the mechanism behind Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Tuple

from repro.sim import Resource, Simulator


@dataclass
class DiskStats:
    """Cumulative disk counters, the raw material for Figures 1a and 8."""

    blocks_read: int = 0
    blocks_written: int = 0
    seeks: int = 0
    sequential_hits: int = 0
    read_time: float = 0.0
    write_time: float = 0.0
    #: file_id -> [blocks read, read time]; Figure 1a attributes query
    #: time to the tables it reads from this map.
    per_file: dict = field(default_factory=dict)

    def _file_entry(self, file_id: int) -> list:
        entry = self.per_file.get(file_id)
        if entry is None:
            entry = [0, 0.0]
            self.per_file[file_id] = entry
        return entry

    def snapshot(self) -> "DiskStats":
        return DiskStats(
            blocks_read=self.blocks_read,
            blocks_written=self.blocks_written,
            seeks=self.seeks,
            sequential_hits=self.sequential_hits,
            read_time=self.read_time,
            write_time=self.write_time,
            per_file={fid: list(v) for fid, v in self.per_file.items()},
        )

    def delta(self, earlier: "DiskStats") -> "DiskStats":
        """Counters accumulated since *earlier* (a prior snapshot)."""
        per_file = {}
        for fid, (blocks, time) in self.per_file.items():
            old = earlier.per_file.get(fid, (0, 0.0))
            if blocks - old[0] or time - old[1]:
                per_file[fid] = [blocks - old[0], time - old[1]]
        return DiskStats(
            blocks_read=self.blocks_read - earlier.blocks_read,
            blocks_written=self.blocks_written - earlier.blocks_written,
            seeks=self.seeks - earlier.seeks,
            sequential_hits=self.sequential_hits - earlier.sequential_hits,
            read_time=self.read_time - earlier.read_time,
            write_time=self.write_time - earlier.write_time,
            per_file=per_file,
        )


@dataclass
class Disk:
    """A single logical disk (the RAID-0 array folded into one device).

    Args:
        sim: owning simulator.
        transfer_time: seconds to move one block once the head is placed.
        seek_time: seconds of penalty for a non-sequential access.
        name: label for diagnostics.
    """

    sim: Simulator
    transfer_time: float = 0.001
    seek_time: float = 0.005
    name: str = "disk"
    stats: DiskStats = field(default_factory=DiskStats)
    #: Fault-injection hook: called as ``fault_hook(file_id, block_no)``
    #: once per read while the head is positioned; may return an action
    #: with extra latency to charge and/or an error to raise after the
    #: (possibly stretched) service time elapses.  None means no faults.
    fault_hook: Any = None

    def __post_init__(self):
        if self.transfer_time <= 0:
            raise ValueError("transfer_time must be positive")
        if self.seek_time < 0:
            raise ValueError("seek_time cannot be negative")
        self._resource = Resource(self.sim, capacity=1, name=self.name)
        self._head: Tuple[int, int] = (-1, -1)  # (file_id, last block)

    # ------------------------------------------------------------------
    def _service_time(self, file_id: int, block_no: int) -> float:
        prev_file, prev_block = self._head
        sequential = file_id == prev_file and block_no == prev_block + 1
        if sequential:
            self.stats.sequential_hits += 1
            return self.transfer_time
        self.stats.seeks += 1
        return self.seek_time + self.transfer_time

    def read(self, file_id: int, block_no: int) -> Generator:
        """Coroutine: read one block, charging queueing + service time.

        When a fault hook is installed it is consulted once per read; the
        request still occupies the disk for the (possibly stretched)
        service time before an injected error surfaces, matching how a
        failing drive burns time before reporting.
        """
        grant = yield self._resource.request()
        try:
            service = self._service_time(file_id, block_no)
            self._head = (file_id, block_no)
            action = None
            if self.fault_hook is not None:
                action = self.fault_hook(file_id, block_no)
            if action is not None:
                service += action.extra_latency
            yield self.sim.timeout(service)
            self.stats.blocks_read += 1
            self.stats.read_time += service
            entry = self.stats._file_entry(file_id)
            entry[0] += 1
            entry[1] += service
            if action is not None and action.error is not None:
                raise action.error
        finally:
            self._resource.release(grant)

    def write(self, file_id: int, block_no: int) -> Generator:
        """Coroutine: write one block (same head mechanics as reads)."""
        grant = yield self._resource.request()
        try:
            service = self._service_time(file_id, block_no)
            self._head = (file_id, block_no)
            yield self.sim.timeout(service)
            self.stats.blocks_written += 1
            self.stats.write_time += service
        finally:
            self._resource.release(grant)

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    def utilization(self) -> float:
        return self._resource.utilization()

    def sequential_scan_time(self, blocks: int) -> float:
        """Analytic time for an undisturbed scan of *blocks* blocks."""
        if blocks <= 0:
            return 0.0
        return self.seek_time + blocks * self.transfer_time
