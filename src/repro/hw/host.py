"""The host bundle: one simulator plus its hardware models and cost knobs."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.hw.cpu import CPU
from repro.hw.disk import Disk
from repro.sim import Simulator


@dataclass
class HostConfig:
    """Hardware and cost-model knobs, scaled per DESIGN.md section 5.

    The defaults give a ~2 MB/s effective sequential disk (8 KB blocks at
    4 ms each), so a ~1,500-block LINEITEM scan takes ~6 simulated seconds
    per configured `time_scale`; harness presets stretch this so that full
    scans take on the order of 100 simulated seconds, matching the paper's
    interarrival sweeps.
    """

    cores: int = 2
    disk_transfer_time: float = 0.004
    disk_seek_time: float = 0.02
    #: CPU seconds to process one tuple through one operator.
    cpu_per_tuple: float = 0.00001
    #: CPU seconds for a buffer-pool hit (in-memory page access).
    page_hit_cost: float = 0.00002
    #: comparison cost multiplier used by sort (n log n * this).
    sort_cpu_factor: float = 1.0
    seed: int = 20050614  # SIGMOD 2005 opening day


@dataclass
class Host:
    """One simulated machine: clock, disk, CPU, and a seeded RNG.

    Every experiment builds exactly one Host, then builds a storage
    manager and an engine on top of it.
    """

    config: HostConfig = field(default_factory=HostConfig)

    def __post_init__(self):
        self.sim = Simulator()
        self.disk = Disk(
            self.sim,
            transfer_time=self.config.disk_transfer_time,
            seek_time=self.config.disk_seek_time,
        )
        self.cpu = CPU(self.sim, cores=self.config.cores)
        self.rng = random.Random(self.config.seed)

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until=None) -> float:
        return self.sim.run(until=until)
