"""The host bundle: one simulator plus its hardware models and cost knobs.

A single-host experiment builds one :class:`Host`, which owns a private
:class:`~repro.sim.kernel.Simulator`.  A scale-out experiment builds a
:class:`Cluster`: N hosts sharing **one** simulator (one virtual clock),
each with its own disk, CPU cores, and RNG stream, linked by a
:class:`~repro.hw.net.Network`.  Sharing the clock is what makes
distributed runs exactly as deterministic as single-host ones -- there
is no cross-host time skew to model away.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.hw.cpu import CPU
from repro.hw.disk import Disk
from repro.hw.net import NetConfig, Network
from repro.sim import Simulator


@dataclass
class HostConfig:
    """Hardware and cost-model knobs, scaled per DESIGN.md section 5.

    The defaults give a ~2 MB/s effective sequential disk (8 KB blocks at
    4 ms each), so a ~1,500-block LINEITEM scan takes ~6 simulated seconds
    per configured `time_scale`; harness presets stretch this so that full
    scans take on the order of 100 simulated seconds, matching the paper's
    interarrival sweeps.
    """

    cores: int = 2
    disk_transfer_time: float = 0.004
    disk_seek_time: float = 0.02
    #: CPU seconds to process one tuple through one operator.
    cpu_per_tuple: float = 0.00001
    #: CPU seconds for a buffer-pool hit (in-memory page access).
    page_hit_cost: float = 0.00002
    #: comparison cost multiplier used by sort (n log n * this).
    sort_cpu_factor: float = 1.0
    seed: int = 20050614  # SIGMOD 2005 opening day


@dataclass
class Host:
    """One simulated machine: clock, disk, CPU, and a seeded RNG.

    A standalone experiment builds exactly one Host (which creates its
    own Simulator), then builds a storage manager and an engine on top
    of it.  Cluster members are built with a shared ``sim`` so every
    host's disk and CPU queue on one clock, and a ``name`` that labels
    the per-host disk resource and the host's NIC on the network.
    """

    config: HostConfig = field(default_factory=HostConfig)
    #: Shared simulator for cluster members; None builds a private one.
    sim: Optional[Simulator] = None
    #: Diagnostic label; cluster builders pass ``host0``, ``host1``, ...
    name: str = "host"

    def __post_init__(self):
        if self.sim is None:
            self.sim = Simulator()
        disk_name = "disk" if self.name == "host" else f"{self.name}.disk"
        self.disk = Disk(
            self.sim,
            transfer_time=self.config.disk_transfer_time,
            seek_time=self.config.disk_seek_time,
            name=disk_name,
        )
        self.cpu = CPU(self.sim, cores=self.config.cores)
        self.rng = random.Random(self.config.seed)

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until=None) -> float:
        return self.sim.run(until=until)


@dataclass(frozen=True)
class ClusterConfig:
    """An N-host symmetric cluster: identical hosts, one link fabric."""

    hosts: int = 2
    host: HostConfig = field(default_factory=HostConfig)
    net: NetConfig = field(default_factory=NetConfig)

    def __post_init__(self):
        if self.hosts < 1:
            raise ValueError(f"cluster needs >= 1 host: {self.hosts}")


class Cluster:
    """N hosts on one shared virtual clock, linked by a Network.

    Host ``i`` is named ``host{i}`` and seeded ``config.host.seed + i``
    so per-host RNG streams are distinct but reproducible.  Each host
    owns its own disk and CPU; callers layer one storage manager (buffer
    pool, WAL, locks) and engine per host on top
    (:class:`repro.shard.topology.ShardedSystem` does exactly that).
    """

    def __init__(self, config: ClusterConfig = ClusterConfig()):
        self.config = config
        self.sim = Simulator()
        self.hosts: List[Host] = [
            Host(
                replace(config.host, seed=config.host.seed + i),
                sim=self.sim,
                name=f"host{i}",
            )
            for i in range(config.hosts)
        ]
        self.network = Network(
            self.sim, config.net, tuple(h.name for h in self.hosts)
        )

    def __len__(self):
        return len(self.hosts)

    def host(self, i: int) -> Host:
        return self.hosts[i]

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until=None) -> float:
        return self.sim.run(until=until)
