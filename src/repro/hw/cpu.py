"""A multi-core CPU model charging per-batch processing bursts.

QPipe workers, baseline iterator queries, and client-side glue all charge
CPU time in short bursts (one per tuple batch).  Because bursts are short
relative to disk service times, FIFO queueing of bursts approximates the
preemptive processor-sharing discipline the paper's OS scheduler provides,
while remaining deterministic.
"""

from __future__ import annotations

from typing import Generator

from repro.sim import Resource, Simulator


class CPU:
    """A bank of *cores* identical cores.

    Usage inside a process::

        yield from cpu.burst(n_tuples * cost_per_tuple)
    """

    def __init__(self, sim: Simulator, cores: int = 1, name: str = "cpu"):
        if cores < 1:
            raise ValueError(f"cores must be >= 1: {cores}")
        self.sim = sim
        self.cores = cores
        self.name = name
        self._resource = Resource(sim, capacity=cores, name=name)
        self.total_burst_time = 0.0
        self.total_bursts = 0

    def burst(self, cost: float) -> Generator:
        """Coroutine: occupy one core for *cost* virtual seconds."""
        if cost < 0:
            raise ValueError(f"negative CPU cost: {cost}")
        if cost == 0:
            return
        grant = yield self._resource.request()
        try:
            yield self.sim.timeout(cost)
            self.total_burst_time += cost
            self.total_bursts += 1
        finally:
            self._resource.release(grant)

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    def utilization(self) -> float:
        """Time-averaged busy cores in [0, cores]."""
        return self._resource.utilization()
