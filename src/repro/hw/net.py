"""A queued, bandwidth/latency-modeled link fabric between hosts.

The model (DESIGN.md section 16) follows the disk's discipline exactly
-- queueing at a capacity-1 resource, whole-unit charging, deterministic
service order -- so distributed runs stay bit-reproducible:

* every attached host owns one :class:`NIC` with a *send* queue and a
  *receive* queue, each a capacity-1 FIFO :class:`~repro.sim.sync.Resource`;
  concurrent messages on one host serialize exactly like concurrent
  reads on its disk;
* a message of ``b`` payload bytes is framed into
  ``ceil(b / frame_bytes)`` fixed-size frames and charged **whole
  frames** on the wire -- the same whole-block charging the disk model
  uses for partially-filled pages;
* service is store-and-forward: the sender NIC is occupied for
  ``frames * frame_bytes / bandwidth`` seconds, a fixed propagation
  latency elapses, then the receiver NIC is occupied for the same
  serialization time again;
* delivery order is deterministic because the NIC queues are FIFO
  resources on a deterministic event kernel: two runs of the same
  workload interleave messages identically.

Loopback (``src == dst``) is free and instantaneous: exchange partners
that are co-resident on one host hand batches over in memory, which is
what lets a 1-host "sharded" run cost the same as a plain run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Tuple

from repro.sim import Simulator
from repro.sim.sync import Resource


@dataclass(frozen=True)
class NetConfig:
    """Link fabric knobs (one shared medium model; no per-link config).

    The defaults describe a commodity datacenter link: ~1 GbE effective
    bandwidth with sub-millisecond propagation.  Harness presets rescale
    bandwidth relative to the calibrated virtual disk so the network is
    fast-but-not-free next to a scan (Rödiger et al.'s regime).
    """

    #: One-way propagation delay per message, seconds.
    latency: float = 0.0005
    #: NIC serialization bandwidth, bytes/second.
    bandwidth: float = 125_000_000.0
    #: Frame size; messages are charged in whole frames, like disk blocks.
    frame_bytes: int = 8192

    def __post_init__(self):
        if self.latency < 0:
            raise ValueError("latency cannot be negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.frame_bytes < 1:
            raise ValueError("frame_bytes must be >= 1")


@dataclass
class NetStats:
    """Cumulative fabric counters (wire bytes are whole-frame bytes)."""

    messages: int = 0
    loopback_messages: int = 0
    frames: int = 0
    bytes_on_wire: int = 0
    send_time: float = 0.0
    recv_time: float = 0.0
    #: (src, dst) -> [messages, wire bytes]; loopback is not a link.
    per_link: Dict[Tuple[str, str], List[int]] = field(default_factory=dict)


class NIC:
    """One host's network interface: a send queue and a receive queue."""

    __slots__ = ("host", "tx", "rx")

    def __init__(self, sim: Simulator, host: str):
        self.host = host
        self.tx = Resource(sim, capacity=1, name=f"{host}.nic.tx")
        self.rx = Resource(sim, capacity=1, name=f"{host}.nic.rx")


class Network:
    """The cluster's link fabric: NICs per host, one shared cost model.

    Args:
        sim: the cluster's shared simulator.
        config: bandwidth/latency/framing knobs.
        hosts: host names to attach immediately (more may be attached
            later with :meth:`attach`).
    """

    def __init__(
        self,
        sim: Simulator,
        config: NetConfig = NetConfig(),
        hosts: Tuple[str, ...] = (),
    ):
        self.sim = sim
        self.config = config
        self.stats = NetStats()
        self._nics: Dict[str, NIC] = {}
        for name in hosts:
            self.attach(name)

    # ------------------------------------------------------------------
    def attach(self, host: str) -> NIC:
        """Give *host* a NIC (idempotent is an error: names are unique)."""
        if host in self._nics:
            raise ValueError(f"host {host!r} already attached")
        nic = NIC(self.sim, host)
        self._nics[host] = nic
        return nic

    def nic(self, host: str) -> NIC:
        try:
            return self._nics[host]
        except KeyError:
            raise KeyError(
                f"no host {host!r} on this network; have "
                f"{sorted(self._nics)}"
            ) from None

    @property
    def hosts(self) -> List[str]:
        return sorted(self._nics)

    # ------------------------------------------------------------------
    def frames_for(self, nbytes: int) -> int:
        """Whole frames needed for *nbytes* of payload (min 1)."""
        if nbytes < 0:
            raise ValueError(f"message size cannot be negative: {nbytes}")
        return max(1, -(-nbytes // self.config.frame_bytes))

    def serialize_time(self, nbytes: int) -> float:
        """Seconds one NIC is occupied serializing *nbytes* of payload."""
        wire = self.frames_for(nbytes) * self.config.frame_bytes
        return wire / self.config.bandwidth

    def transfer_time(self, nbytes: int) -> float:
        """Analytic uncontended one-way latency for *nbytes* (planning
        estimates; the coroutine below is what actually charges time)."""
        return 2 * self.serialize_time(nbytes) + self.config.latency

    # ------------------------------------------------------------------
    def transfer(
        self, src: str, dst: str, nbytes: int, tag: str = "msg"
    ) -> Generator:
        """Coroutine: move one *nbytes* message from *src* to *dst*.

        Charges sender serialization (queued on the src NIC's send
        queue), propagation latency, then receiver serialization (queued
        on the dst NIC's receive queue) -- store-and-forward.  Returns
        the wire bytes charged (whole frames).  Loopback is free.
        """
        if src == dst:
            self.nic(src)  # still validates the host exists
            self.stats.loopback_messages += 1
            return 0
        snic = self.nic(src)
        rnic = self.nic(dst)
        frames = self.frames_for(nbytes)
        wire = frames * self.config.frame_bytes
        service = wire / self.config.bandwidth
        tracer = self.sim.tracer

        grant = yield snic.tx.request()
        try:
            yield self.sim.timeout(service)
        finally:
            snic.tx.release(grant)
        self.stats.send_time += service
        tracer.net(
            "send", src=src, dst=dst, bytes=wire, frames=frames, tag=tag
        )

        if self.config.latency:
            yield self.sim.timeout(self.config.latency)

        grant = yield rnic.rx.request()
        try:
            yield self.sim.timeout(service)
        finally:
            rnic.rx.release(grant)
        self.stats.recv_time += service

        self.stats.messages += 1
        self.stats.frames += frames
        self.stats.bytes_on_wire += wire
        link = self.stats.per_link.setdefault((src, dst), [0, 0])
        link[0] += 1
        link[1] += wire
        tracer.net(
            "recv", src=src, dst=dst, bytes=wire, frames=frames, tag=tag
        )
        return wire
