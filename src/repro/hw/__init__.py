"""Hardware models: the simulated disk array, CPUs, and the host bundle.

The paper's testbed is a 2.6 GHz Pentium 4 with four 10K RPM SCSI drives in
software RAID-0 and 2 GB RAM.  We model it as:

* one queued :class:`Disk` resource with sequential-vs-seek service times
  (RAID-0 striping is folded into the aggregate sequential bandwidth), and
* a :class:`CPU` resource with a configurable number of cores.

RAM appears indirectly: the buffer pool holds a fixed number of frames and
each query gets a work-memory budget (sort heap / hash tables), mirroring
the paper's "each client is given 128MB of memory" setup.
"""

from repro.hw.cpu import CPU
from repro.hw.disk import Disk, DiskStats
from repro.hw.host import Cluster, ClusterConfig, Host, HostConfig
from repro.hw.net import NIC, NetConfig, NetStats, Network

__all__ = [
    "CPU",
    "Cluster",
    "ClusterConfig",
    "Disk",
    "DiskStats",
    "Host",
    "HostConfig",
    "NIC",
    "NetConfig",
    "NetStats",
    "Network",
]
