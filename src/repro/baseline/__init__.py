"""The conventional "one-query, many-operators" engine (the comparators).

This package implements the query-centric architecture of Figure 5a: each
query executes as a single process pulling tuples through a Volcano-style
iterator tree [Graefe 94].  Queries know nothing about each other; the
only cross-query sharing is whatever the buffer pool provides.

Two configurations reproduce the paper's comparison systems:

* **Baseline** -- the paper's "BerkeleyDB-based QPipe implementation with
  OSP disabled" shares the storage manager and its LRU pool.  (We model it
  with the iterator engine over an LRU pool; the QPipe engine with
  ``osp_enabled=False`` behaves equivalently and is also available.)
* **DBMS X** -- the anonymous commercial system, modelled as the iterator
  engine over a stronger, scan-resistant pool (ARC).
"""

from repro.baseline.engine import IteratorEngine, QueryResult
from repro.baseline.operators import ExecContext, build_operator

__all__ = ["ExecContext", "IteratorEngine", "QueryResult", "build_operator"]
