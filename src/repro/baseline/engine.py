"""The query-centric iterator engine (Figure 5a).

One simulated process per query pulls batches through the operator tree
and collects them.  No cross-query coordination exists above the buffer
pool -- this is precisely the sharing limitation the paper attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.baseline.operators import ExecContext, build_operator
from repro.results import QueryResult
from repro.hw.host import Host
from repro.relational.plans import PlanNode
from repro.storage.manager import StorageManager


@dataclass
class IteratorEngine:
    """Conventional engine over a shared storage manager.

    Args:
        sm: the storage manager (shared across queries; its buffer pool is
            the only sharing mechanism).
        work_mem_tuples: per-query memory budget.
        name: label ("baseline" or "dbms-x") for reports.
    """

    sm: StorageManager
    work_mem_tuples: int = 50_000
    name: str = "iterator"
    _next_query_id: int = field(default=0, repr=False)

    @property
    def host(self) -> Host:
        return self.sm.host

    @property
    def sim(self):
        return self.sm.sim

    def execute(
        self,
        plan: PlanNode,
        query_id: Optional[int] = None,
        lineage=None,
    ) -> Generator:
        """Coroutine: run *plan* to completion; returns a QueryResult."""
        if query_id is None:
            self._next_query_id += 1
            query_id = self._next_query_id
        submitted = self.sim.now
        ctx = ExecContext(
            sm=self.sm,
            host=self.host,
            work_mem_tuples=self.work_mem_tuples,
            owner=("q", self.name, query_id),
            lineage=lineage,
        )
        root = build_operator(plan, ctx)
        started = self.sim.now
        rows: List[tuple] = []
        while True:
            batch = yield from root.next_batch()
            if batch is None:
                break
            rows.extend(batch)
            if lineage is not None:
                yield from lineage.on_root_batch(batch)
        return QueryResult(
            query_id=query_id,
            rows=rows,
            submitted_at=submitted,
            started_at=started,
            finished_at=self.sim.now,
        )

    def run_query(self, plan: PlanNode) -> List[tuple]:
        """Convenience: spawn, run the clock, return the rows (tests)."""
        proc = self.sim.spawn(self.execute(plan), name="query")
        self.sim.run()
        return proc.value.rows
