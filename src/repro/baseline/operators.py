"""Volcano-style iterator operators.

Every operator exposes one coroutine, ``next_batch()``, which yields
simulation events (disk reads, CPU bursts) and returns either a non-empty
list of rows or ``None`` at end-of-stream.  Pull-based: the parent drives.

These operators double as the *correctness reference* for the QPipe
micro-engines -- the integration tests require both engines to produce
identical result sets for the same plans.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.hw.host import Host
from repro.relational.expressions import bind_aggregates
from repro.relational.plans import (
    Aggregate,
    AntiJoin,
    DeleteRows,
    Distinct,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    InsertRows,
    LeftOuterJoin,
    Limit,
    MergeJoin,
    NLJoin,
    PlanNode,
    Project,
    SemiJoin,
    Sort,
    TableScan,
    UpdateRows,
)
from repro.relational.schema import Schema
from repro.storage.locks import LockMode
from repro.storage.manager import StorageManager
from repro.storage.streams import next_stream


@dataclass
class ExecContext:
    """Per-query execution context: storage, host, and memory budget."""

    sm: StorageManager
    host: Host
    #: Work-memory budget in tuples (sort heaps, hash tables); models the
    #: paper's "each client is given 128MB of memory".
    work_mem_tuples: int = 50_000
    #: Query identity, used as the lock owner for updates.
    owner: Any = None
    #: Optional :class:`~repro.lineage.tracker.LineageTracker`; scan
    #: operators report delivered pages through it (None: no recording).
    lineage: Any = None
    #: Live temp files (spill runs, hash partitions) this query created
    #: and has not yet dropped; the engine's fault teardown sweeps them.
    temp_files: List[Any] = field(default_factory=list)

    def cpu(self, tuples: int, factor: float = 1.0) -> Generator:
        """Coroutine: charge CPU for processing *tuples* tuples."""
        cost = tuples * self.host.config.cpu_per_tuple * factor
        yield from self.host.cpu.burst(cost)

    def track_temp(self, temp) -> Any:
        """Register a freshly created temp file for fault-path cleanup."""
        self.temp_files.append(temp)
        return temp

    def drop_temp(self, temp) -> None:
        """Drop a temp file and unregister it (normal-path cleanup)."""
        if temp in self.temp_files:
            self.temp_files.remove(temp)
        self.sm.drop_temp_file(temp)


class Operator:
    """Base iterator operator."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def next_batch(self) -> Generator:
        """Coroutine: the next non-empty batch of rows, or None at EOS."""
        raise NotImplementedError

    def drain(self) -> Generator:
        """Coroutine: every remaining row as one list."""
        rows: List[tuple] = []
        while True:
            batch = yield from self.next_batch()
            if batch is None:
                return rows
            rows.extend(batch)


class ScanOp(Operator):
    """Full table scan with optional predicate and projection."""

    def __init__(self, ctx: ExecContext, plan: TableScan):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.plan = plan
        self.table = plan.table
        base = ctx.sm.catalog.table_schema(plan.table)
        self._pred = plan.predicate.bind(base) if plan.predicate else None
        self._proj = (
            base.projector(plan.project) if plan.project is not None else None
        )
        self._num_pages = ctx.sm.num_pages(plan.table)
        # Recovery resume: visit exactly the unconsumed page suffix in
        # wrapped order; a fresh scan visits every page from 0.
        if plan.resume is None:
            self._start_page = 0
            self._pages_left = self._num_pages
        else:
            self._start_page, self._pages_left = plan.resume
        self._visited = 0
        # Constant for the op's lifetime, like id(self) was -- but never
        # reused by a later scan (see repro.storage.streams).
        self._stream = next_stream()

    def next_batch(self):
        while self._visited < self._pages_left:
            block = (self._start_page + self._visited) % self._num_pages
            page = yield from self.ctx.sm.read_table_page(
                self.table, block, scan=True, stream=self._stream
            )
            self._visited += 1
            rows = page.rows()
            yield from self.ctx.cpu(len(rows))
            if self._pred is not None:
                rows = [row for row in rows if self._pred(row)]
            if self._proj is not None:
                rows = [self._proj(row) for row in rows]
            if self.ctx.lineage is not None:
                self.ctx.lineage.scan_page(
                    self._stream, self.table, block, len(rows),
                    self._num_pages,
                )
            if rows:
                return rows
        return None


class IndexScanOp(Operator):
    """Index scan: probe the B+tree for RIDs, then fetch rows.

    Phase one builds the full matching RID list (the paper's unclustered
    scan); phase two fetches pages.  With ``ordered=True`` rows come out
    in key order; otherwise RIDs are sorted by page number first to visit
    each page once, sequentially.
    """

    def __init__(self, ctx: ExecContext, plan: IndexScan):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.plan = plan
        base = ctx.sm.catalog.table_schema(plan.table)
        info = ctx.sm.catalog.index(plan.table, plan.index)
        self._clustered = info.clustered
        self._key_fn = ctx.sm._key_fn(base, info.key_columns)
        self._pred = plan.predicate.bind(base) if plan.predicate else None
        self._proj = (
            base.projector(plan.project) if plan.project is not None else None
        )
        self._rids: Optional[List] = None
        self._page_no: Optional[int] = None
        self._stopped = False
        self._cursor = 0
        self._stream = next_stream()

    def _probe(self):
        pairs = yield from self.ctx.sm.index_range(
            self.plan.table, self.plan.index, self.plan.lo, self.plan.hi
        )
        rids = [rid for _key, rid in pairs]
        if not self.plan.ordered:
            rids.sort()  # ascending page number: one visit per page
        self._rids = rids

    def _next_clustered_batch(self):
        """Clustered path: one tree descent, then a sequential, key-
        ordered heap read ("similar to file scans", section 3.2)."""
        plan = self.plan
        sm = self.ctx.sm
        if self._page_no is None:
            self._page_no = yield from sm.clustered_start_page(
                plan.table, plan.index, plan.lo
            )
        num_pages = sm.num_pages(plan.table)
        while not self._stopped and self._page_no < num_pages:
            page = yield from sm.read_table_page(
                plan.table, self._page_no, scan=True, stream=self._stream
            )
            self._page_no += 1
            rows = page.rows()
            yield from self.ctx.cpu(len(rows))
            if plan.hi is not None and rows and self._key_fn(rows[0]) > plan.hi:
                self._stopped = True
                return None
            if plan.lo is not None or plan.hi is not None:
                rows = [
                    row
                    for row in rows
                    if (plan.lo is None or self._key_fn(row) >= plan.lo)
                    and (plan.hi is None or self._key_fn(row) <= plan.hi)
                ]
            if self._pred is not None:
                rows = [row for row in rows if self._pred(row)]
            if self._proj is not None:
                rows = [self._proj(row) for row in rows]
            if rows:
                return rows
        return None

    def next_batch(self):
        if self._clustered:
            batch = yield from self._next_clustered_batch()
            return batch
        if self._rids is None:
            yield from self._probe()
        rids = self._rids
        out: List[tuple] = []
        while self._cursor < len(rids) and not out:
            # Group consecutive RIDs on the same page into one fetch.
            block = rids[self._cursor].block_no
            page = yield from self.ctx.sm.read_table_page(
                self.plan.table, block, scan=True, stream=self._stream
            )
            group: List[tuple] = []
            while (
                self._cursor < len(rids)
                and rids[self._cursor].block_no == block
            ):
                row = page.get(rids[self._cursor].slot)
                if row is not None:
                    group.append(row)
                self._cursor += 1
            yield from self.ctx.cpu(len(group))
            if self._pred is not None:
                group = [row for row in group if self._pred(row)]
            if self._proj is not None:
                group = [self._proj(row) for row in group]
            out.extend(group)
        return out or None


class FilterOp(Operator):
    """Residual predicate filter."""

    def __init__(self, ctx: ExecContext, plan: Filter, child: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.child = child
        self._pred = plan.predicate.bind(child.schema)

    def next_batch(self):
        while True:
            batch = yield from self.child.next_batch()
            if batch is None:
                return None
            yield from self.ctx.cpu(len(batch))
            kept = [row for row in batch if self._pred(row)]
            if kept:
                return kept


class ProjectOp(Operator):
    def __init__(self, ctx: ExecContext, plan: Project, child: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.child = child
        if plan.exprs is None:
            self._fn = child.schema.projector(plan.names)
        else:
            bound = [e.bind(child.schema) for e in plan.exprs]
            self._fn = lambda row: tuple(fn(row) for fn in bound)

    def next_batch(self):
        batch = yield from self.child.next_batch()
        if batch is None:
            return None
        yield from self.ctx.cpu(len(batch))
        return [self._fn(row) for row in batch]


class SortOp(Operator):
    """External merge sort with a work-memory budget.

    Runs of ``work_mem_tuples`` rows are sorted in memory and spilled to
    temp files; a final k-way merge streams the result.  When the input
    fits in memory no temp I/O is charged.
    """

    def __init__(self, ctx: ExecContext, plan: Sort, child: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.child = child
        self.keys = plan.keys
        self.descending = plan.descending
        self._key = child.schema.projector(plan.keys)
        self._sorted: Optional[List[tuple]] = None  # in-memory path
        self._merge: Optional[Generator] = None  # external path
        self._runs: List = []
        self._done = False

    def _sort_cost(self, n: int) -> Generator:
        import math

        comparisons = n * max(1.0, math.log2(max(2, n)))
        yield from self.ctx.cpu(
            int(comparisons), factor=self.ctx.host.config.sort_cpu_factor
        )

    def _build(self):
        budget = self.ctx.work_mem_tuples
        buffer: List[tuple] = []
        while True:
            batch = yield from self.child.next_batch()
            if batch is None:
                break
            buffer.extend(batch)
            if len(buffer) >= budget:
                yield from self._spill(buffer)
                buffer = []
        if not self._runs:
            yield from self._sort_cost(len(buffer))
            buffer.sort(key=self._key, reverse=self.descending)
            self._sorted = buffer
            return
        if buffer:
            yield from self._spill(buffer)

    def _spill(self, rows: List[tuple]):
        yield from self._sort_cost(len(rows))
        rows.sort(key=self._key, reverse=self.descending)
        # Born tracked: an interrupt landing inside write_run must leave
        # the run visible to the fault-teardown sweep.
        run = self.ctx.track_temp(
            self.ctx.sm.create_temp_file(
                self.schema.row_width, label="sortrun"
            )
        )
        yield from self.ctx.sm.write_run(run, rows)
        self._runs.append(run)

    def _run_reader(self, run):
        """Sub-coroutine factory: stream one run's rows page by page."""
        for block in range(run.num_pages):
            page = yield from self.ctx.sm.read_temp_page(run, block)
            for row in page.rows():
                yield ("row", row)

    def _merged_rows(self):
        """Coroutine: k-way merge over spilled runs, yielding ('row', r)."""
        sign = -1 if self.descending else 1

        readers = [self._run_reader(run) for run in self._runs]
        heads: List = []
        for i, reader in enumerate(readers):
            row = yield from self._advance(reader)
            if row is not None:
                heads.append((self._rank(row, sign), i, row))
        heapq.heapify(heads)
        while heads:
            _rank, i, row = heapq.heappop(heads)
            yield ("row", row)
            nxt = yield from self._advance(readers[i])
            if nxt is not None:
                heapq.heappush(heads, (self._rank(nxt, sign), i, nxt))

    def _rank(self, row, sign):
        key = self._key(row)
        if sign == 1:
            return key
        return tuple(_Neg(part) for part in key)

    @staticmethod
    def _advance(reader):
        """Pull the next ('row', r) from a sub-coroutine, forwarding sim
        events; returns the row or None at exhaustion."""
        try:
            item = next(reader)
        except StopIteration:
            return None
        while True:
            if isinstance(item, tuple) and item and item[0] == "row":
                return item[1]
            value = yield item
            try:
                item = reader.send(value)
            except StopIteration:
                return None

    def next_batch(self):
        if self._done:
            return None
        if self._sorted is None and self._merge is None:
            yield from self._build()
            if self._runs:
                self._merge = self._merged_rows()
        if self._sorted is not None:
            self._done = True
            for run in self._runs:
                self.ctx.drop_temp(run)
            return self._sorted or None
        out: List[tuple] = []
        while len(out) < 1024:
            row = yield from self._advance(self._merge)
            if row is None:
                self._done = True
                for run in self._runs:
                    self.ctx.drop_temp(run)
                break
            out.append(row)
        if out:
            yield from self.ctx.cpu(len(out))
        return out or None


class _Neg:
    """Ordering inverter for descending sort keys in heap merges."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return other.value == self.value


class HashJoinOp(Operator):
    """Hash join: build on the left input, probe with the right.

    When the build side exceeds the memory budget, both sides are
    partitioned to temp files (Grace-style) and partition pairs are
    joined in memory.
    """

    def __init__(self, ctx: ExecContext, plan: HashJoin,
                 left: Operator, right: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.left = left
        self.right = right
        self._lkey = left.schema.projector([plan.left_key])
        self._rkey = right.schema.projector([plan.right_key])
        self._table: Optional[Dict] = None
        self._partitioned = False
        self._lparts: List = []
        self._rparts: List = []
        self._part_iter = None
        self._pending: List[tuple] = []
        self._done = False

    def _build(self):
        budget = self.ctx.work_mem_tuples
        table: Dict[Any, List[tuple]] = {}
        count = 0
        overflow: List[tuple] = []
        while True:
            batch = yield from self.left.next_batch()
            if batch is None:
                break
            yield from self.ctx.cpu(len(batch))
            count += len(batch)
            if count > budget and not self._partitioned:
                self._partitioned = True
            if self._partitioned:
                overflow.extend(batch)
            else:
                for row in batch:
                    table.setdefault(self._lkey(row), []).append(row)
        if not self._partitioned:
            self._table = table
            return
        # Spill: rows already hashed plus the overflow go to partitions.
        all_rows = [row for rows in table.values() for row in rows]
        all_rows.extend(overflow)
        nparts = max(
            2, -(-len(all_rows) // max(1, self.ctx.work_mem_tuples // 2))
        )
        self._lparts = yield from self._partition(
            all_rows, self._lkey, nparts, "hjL"
        )
        rrows = yield from self.right.drain()
        self._rparts = yield from self._partition(
            rrows, self._rkey, nparts, "hjR"
        )
        self._part_iter = iter(range(nparts))

    def _partition(self, rows, key, nparts, label):
        buckets: List[List[tuple]] = [[] for _ in range(nparts)]
        for row in rows:
            buckets[hash(key(row)) % nparts].append(row)
        yield from self.ctx.cpu(len(rows))
        parts = []
        for bucket in buckets:
            # Born tracked, so a fault mid-write leaves no orphan file.
            part = self.ctx.track_temp(
                self.ctx.sm.create_temp_file(64, label=label)
            )
            yield from self.ctx.sm.write_run(part, bucket)
            parts.append(part)
        return parts

    def _read_part(self, part):
        rows: List[tuple] = []
        for block in range(part.num_pages):
            page = yield from self.ctx.sm.read_temp_page(part, block)
            rows.extend(page.rows())
        return rows

    def next_batch(self):
        if self._done:
            return None
        if self._table is None and not self._partitioned:
            yield from self._build()
        if self._pending:
            out, self._pending = self._pending[:1024], self._pending[1024:]
            return out
        if not self._partitioned:
            table = self._table
            while True:
                batch = yield from self.right.next_batch()
                if batch is None:
                    self._done = True
                    return None
                yield from self.ctx.cpu(len(batch))
                out: List[tuple] = []
                for rrow in batch:
                    for lrow in table.get(self._rkey(rrow), ()):
                        out.append(lrow + rrow)
                if out:
                    return out
        # Partitioned path: join one partition pair at a time.
        while True:
            if self._pending:
                out = self._pending[:1024]
                self._pending = self._pending[1024:]
                return out
            try:
                p = next(self._part_iter)
            except StopIteration:
                self._done = True
                for part in self._lparts + self._rparts:
                    self.ctx.drop_temp(part)
                return None
            lrows = yield from self._read_part(self._lparts[p])
            rrows = yield from self._read_part(self._rparts[p])
            yield from self.ctx.cpu(len(lrows) + len(rrows))
            table: Dict[Any, List[tuple]] = {}
            for row in lrows:
                table.setdefault(self._lkey(row), []).append(row)
            for rrow in rrows:
                for lrow in table.get(self._rkey(rrow), ()):
                    self._pending.append(lrow + rrow)


class MergeJoinOp(Operator):
    """Merge join over inputs already sorted on the join keys."""

    def __init__(self, ctx: ExecContext, plan: MergeJoin,
                 left: Operator, right: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.left = left
        self.right = right
        self._lkey = left.schema.projector([plan.left_key])
        self._rkey = right.schema.projector([plan.right_key])
        self._lbuf: List[tuple] = []
        self._rbuf: List[tuple] = []
        self._lend = False
        self._rend = False
        self._done = False

    def _fill_left(self):
        while not self._lbuf and not self._lend:
            batch = yield from self.left.next_batch()
            if batch is None:
                self._lend = True
            else:
                self._lbuf.extend(batch)

    def _fill_right(self):
        while not self._rbuf and not self._rend:
            batch = yield from self.right.next_batch()
            if batch is None:
                self._rend = True
            else:
                self._rbuf.extend(batch)

    def next_batch(self):
        if self._done:
            return None
        out: List[tuple] = []
        while not out:
            yield from self._fill_left()
            yield from self._fill_right()
            if (self._lend and not self._lbuf) or (
                self._rend and not self._rbuf
            ):
                self._done = True
                return None
            lkey = self._lkey(self._lbuf[0])
            rkey = self._rkey(self._rbuf[0])
            if lkey < rkey:
                self._lbuf.pop(0)
            elif rkey < lkey:
                self._rbuf.pop(0)
            else:
                # Gather the full duplicate groups on both sides.
                lgroup = yield from self._take_group(
                    self._lbuf, self._lkey, lkey, self._fill_left, "_lend"
                )
                rgroup = yield from self._take_group(
                    self._rbuf, self._rkey, rkey, self._fill_right, "_rend"
                )
                yield from self.ctx.cpu(len(lgroup) * len(rgroup))
                for lrow in lgroup:
                    for rrow in rgroup:
                        out.append(lrow + rrow)
        return out

    def _take_group(self, buf, key, value, fill, end_attr):
        group: List[tuple] = []
        while True:
            while buf and key(buf[0]) == value:
                group.append(buf.pop(0))
            if buf or getattr(self, end_attr):
                return group
            yield from fill()
            if not buf:
                return group


class NLJoinOp(Operator):
    """Block nested-loop join: the right side is materialised to a temp
    file once, then rescanned for every left batch."""

    def __init__(self, ctx: ExecContext, plan: NLJoin,
                 left: Operator, right: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.left = left
        self.right = right
        self._pred = plan.predicate.bind(self.schema)
        self._right_mat = None
        self._done = False

    def _materialise_right(self):
        rows = yield from self.right.drain()
        # Born tracked: a fault inside write_run must not orphan the
        # materialisation (the teardown sweep drops tracked temps).
        mat = self.ctx.track_temp(
            self.ctx.sm.create_temp_file(
                self.right.schema.row_width, label="nlj"
            )
        )
        yield from self.ctx.sm.write_run(mat, rows)
        self._right_mat = mat

    def next_batch(self):
        if self._done:
            return None
        if self._right_mat is None:
            yield from self._materialise_right()
        while True:
            batch = yield from self.left.next_batch()
            if batch is None:
                self._done = True
                self.ctx.drop_temp(self._right_mat)
                return None
            out: List[tuple] = []
            for block in range(self._right_mat.num_pages):
                page = yield from self.ctx.sm.read_temp_page(
                    self._right_mat, block
                )
                rrows = page.rows()
                yield from self.ctx.cpu(len(batch) * len(rrows))
                for lrow in batch:
                    for rrow in rrows:
                        joined = lrow + rrow
                        if self._pred(joined):
                            out.append(joined)
            if out:
                return out


class LimitOp(Operator):
    """LIMIT/OFFSET: stop pulling once satisfied."""

    def __init__(self, ctx: ExecContext, plan: Limit, child: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.child = child
        self._to_skip = plan.offset
        self._remaining = plan.count

    def next_batch(self):
        while self._remaining > 0:
            batch = yield from self.child.next_batch()
            if batch is None:
                return None
            if self._to_skip:
                drop = min(self._to_skip, len(batch))
                batch = batch[drop:]
                self._to_skip -= drop
            if not batch:
                continue
            batch = batch[: self._remaining]
            self._remaining -= len(batch)
            return batch
        return None


class DistinctOp(Operator):
    """Streaming duplicate elimination (first occurrence wins)."""

    def __init__(self, ctx: ExecContext, plan: Distinct, child: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.child = child
        self._seen = set()

    def next_batch(self):
        while True:
            batch = yield from self.child.next_batch()
            if batch is None:
                return None
            yield from self.ctx.cpu(len(batch))
            fresh = []
            for row in batch:
                if row not in self._seen:
                    self._seen.add(row)
                    fresh.append(row)
            if fresh:
                return fresh


class SemiJoinOp(Operator):
    """EXISTS / NOT EXISTS: stream left rows by membership of their key
    in the right input's key set."""

    def __init__(self, ctx: ExecContext, plan, left: Operator,
                 right: Operator, anti: bool = False):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.left = left
        self.right = right
        self.anti = anti
        self._lkey = left.schema.projector([plan.left_key])
        self._rkey = right.schema.projector([plan.right_key])
        self._keys = None

    def _build(self):
        keys = set()
        while True:
            batch = yield from self.right.next_batch()
            if batch is None:
                break
            yield from self.ctx.cpu(len(batch))
            for row in batch:
                keys.add(self._rkey(row))
        self._keys = keys

    def next_batch(self):
        if self._keys is None:
            yield from self._build()
        while True:
            batch = yield from self.left.next_batch()
            if batch is None:
                return None
            yield from self.ctx.cpu(len(batch))
            if self.anti:
                kept = [r for r in batch if self._lkey(r) not in self._keys]
            else:
                kept = [r for r in batch if self._lkey(r) in self._keys]
            if kept:
                return kept


class LeftOuterJoinOp(Operator):
    """Hash left-outer join: build the right side, pad misses with None."""

    def __init__(self, ctx: ExecContext, plan: LeftOuterJoin,
                 left: Operator, right: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.left = left
        self.right = right
        self._lkey = left.schema.projector([plan.left_key])
        self._rkey = right.schema.projector([plan.right_key])
        self._pad = (None,) * len(right.schema)
        self._table = None

    def _build(self):
        table: Dict[Any, List[tuple]] = {}
        while True:
            batch = yield from self.right.next_batch()
            if batch is None:
                break
            yield from self.ctx.cpu(len(batch))
            for row in batch:
                table.setdefault(self._rkey(row), []).append(row)
        self._table = table

    def next_batch(self):
        if self._table is None:
            yield from self._build()
        while True:
            batch = yield from self.left.next_batch()
            if batch is None:
                return None
            yield from self.ctx.cpu(len(batch))
            out: List[tuple] = []
            for lrow in batch:
                matches = self._table.get(self._lkey(lrow))
                if matches:
                    for rrow in matches:
                        out.append(lrow + rrow)
                else:
                    out.append(lrow + self._pad)
            if out:
                return out


class AggregateOp(Operator):
    """Single-group aggregation: drains the child, emits one row."""

    def __init__(self, ctx: ExecContext, plan: Aggregate, child: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.child = child
        self.specs, self._fns = bind_aggregates(plan.aggs, child.schema)
        self._done = False

    #: Consumed input batches between lineage checkpoints of the
    #: accumulator state (one batch per non-empty scan page upstream).
    CHECKPOINT_EVERY = 8

    def next_batch(self):
        if self._done:
            return None
        states = [spec.make_state() for spec in self.specs]
        lineage = self.ctx.lineage
        consumed = 0
        batches = 0
        while True:
            batch = yield from self.child.next_batch()
            if batch is None:
                break
            yield from self.ctx.cpu(len(batch) * len(states))
            for row in batch:
                for state, fn in zip(states, self._fns):
                    state.add(fn(row))
            consumed += len(batch)
            batches += 1
            if lineage is not None and batches % self.CHECKPOINT_EVERY == 0:
                yield from lineage.checkpoint(
                    consumed,
                    [(s.count, s.total, s.best) for s in states],
                )
        self._done = True
        return [tuple(state.result() for state in states)]


class GroupByOp(Operator):
    """Hash grouping: drains the child, emits one row per group."""

    def __init__(self, ctx: ExecContext, plan: GroupBy, child: Operator):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.child = child
        self.specs, self._fns = bind_aggregates(plan.aggs, child.schema)
        self._group = child.schema.projector(plan.group_cols)
        self._result: Optional[List[tuple]] = None
        self._cursor = 0

    def _consume(self):
        groups: Dict[tuple, list] = {}
        while True:
            batch = yield from self.child.next_batch()
            if batch is None:
                break
            yield from self.ctx.cpu(len(batch) * max(1, len(self.specs)))
            for row in batch:
                key = self._group(row)
                states = groups.get(key)
                if states is None:
                    states = [spec.make_state() for spec in self.specs]
                    groups[key] = states
                for state, fn in zip(states, self._fns):
                    state.add(fn(row))
        self._result = [
            key + tuple(state.result() for state in states)
            for key, states in sorted(groups.items())
        ]

    def next_batch(self):
        if self._result is None:
            yield from self._consume()
        if self._cursor >= len(self._result):
            return None
        out = self._result[self._cursor:self._cursor + 1024]
        self._cursor += len(out)
        return out


class InsertOp(Operator):
    """Insert rows under an exclusive table lock (section 4.3.4)."""

    def __init__(self, ctx: ExecContext, plan: InsertRows):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.plan = plan
        self._done = False

    def next_batch(self):
        if self._done:
            return None
        self._done = True
        owner = self.ctx.owner or id(self)
        yield self.ctx.sm.locks.acquire(
            owner, self.plan.table, LockMode.EXCLUSIVE
        )
        try:
            for row in self.plan.rows:
                yield from self.ctx.sm.insert_row(self.plan.table, row)
        finally:
            self.ctx.sm.locks.release(owner, self.plan.table)
        return [(len(self.plan.rows),)]


class UpdateOp(Operator):
    """Predicate update under an exclusive table lock."""

    def __init__(self, ctx: ExecContext, plan: UpdateRows):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.plan = plan
        self._done = False

    def next_batch(self):
        if self._done:
            return None
        self._done = True
        owner = self.ctx.owner or id(self)
        table = self.plan.table
        schema = self.ctx.sm.catalog.table_schema(table)
        pred = self.plan.predicate.bind(schema) if self.plan.predicate else None
        yield self.ctx.sm.locks.acquire(owner, table, LockMode.EXCLUSIVE)
        changed = 0
        try:
            info = self.ctx.sm.catalog.table(table)
            for block in range(info.num_pages):
                page = yield from self.ctx.sm.read_table_page(table, block)
                for slot, row in list(page.items()):
                    if pred is None or pred(row):
                        from repro.storage.page import RID

                        yield from self.ctx.sm.update_row(
                            table, RID(block, slot), self.plan.apply(row)
                        )
                        changed += 1
        finally:
            self.ctx.sm.locks.release(owner, table)
        return [(changed,)]


class DeleteOp(Operator):
    """Predicate delete under an exclusive table lock."""

    def __init__(self, ctx: ExecContext, plan: DeleteRows):
        super().__init__(plan.output_schema(ctx.sm.catalog))
        self.ctx = ctx
        self.plan = plan
        self._done = False

    def next_batch(self):
        if self._done:
            return None
        self._done = True
        owner = self.ctx.owner or id(self)
        table = self.plan.table
        schema = self.ctx.sm.catalog.table_schema(table)
        pred = self.plan.predicate.bind(schema) if self.plan.predicate else None
        yield self.ctx.sm.locks.acquire(owner, table, LockMode.EXCLUSIVE)
        removed = 0
        try:
            info = self.ctx.sm.catalog.table(table)
            for block in range(info.num_pages):
                page = yield from self.ctx.sm.read_table_page(table, block)
                for slot, row in list(page.items()):
                    if pred is None or pred(row):
                        from repro.storage.page import RID

                        yield from self.ctx.sm.delete_row(
                            table, RID(block, slot)
                        )
                        removed += 1
        finally:
            self.ctx.sm.locks.release(owner, table)
        return [(removed,)]


def build_operator(plan: PlanNode, ctx: ExecContext) -> Operator:
    """Compile a logical plan tree into an iterator operator tree."""
    if isinstance(plan, TableScan):
        return ScanOp(ctx, plan)
    if isinstance(plan, IndexScan):
        return IndexScanOp(ctx, plan)
    if isinstance(plan, Filter):
        return FilterOp(ctx, plan, build_operator(plan.child, ctx))
    if isinstance(plan, Project):
        return ProjectOp(ctx, plan, build_operator(plan.child, ctx))
    if isinstance(plan, Sort):
        return SortOp(ctx, plan, build_operator(plan.child, ctx))
    if isinstance(plan, HashJoin):
        return HashJoinOp(
            ctx, plan,
            build_operator(plan.left, ctx),
            build_operator(plan.right, ctx),
        )
    if isinstance(plan, MergeJoin):
        return MergeJoinOp(
            ctx, plan,
            build_operator(plan.left, ctx),
            build_operator(plan.right, ctx),
        )
    if isinstance(plan, NLJoin):
        return NLJoinOp(
            ctx, plan,
            build_operator(plan.left, ctx),
            build_operator(plan.right, ctx),
        )
    if isinstance(plan, Limit):
        return LimitOp(ctx, plan, build_operator(plan.child, ctx))
    if isinstance(plan, Distinct):
        return DistinctOp(ctx, plan, build_operator(plan.child, ctx))
    if isinstance(plan, SemiJoin):
        return SemiJoinOp(
            ctx, plan,
            build_operator(plan.left, ctx),
            build_operator(plan.right, ctx),
            anti=False,
        )
    if isinstance(plan, AntiJoin):
        return SemiJoinOp(
            ctx, plan,
            build_operator(plan.left, ctx),
            build_operator(plan.right, ctx),
            anti=True,
        )
    if isinstance(plan, LeftOuterJoin):
        return LeftOuterJoinOp(
            ctx, plan,
            build_operator(plan.left, ctx),
            build_operator(plan.right, ctx),
        )
    if isinstance(plan, Aggregate):
        return AggregateOp(ctx, plan, build_operator(plan.child, ctx))
    if isinstance(plan, GroupBy):
        return GroupByOp(ctx, plan, build_operator(plan.child, ctx))
    if isinstance(plan, InsertRows):
        return InsertOp(ctx, plan)
    if isinstance(plan, UpdateRows):
        return UpdateOp(ctx, plan)
    if isinstance(plan, DeleteRows):
        return DeleteOp(ctx, plan)
    raise TypeError(f"no iterator operator for {type(plan).__name__}")
