"""Per-query lineage tracking: input pages -> emitted batch frontiers.

A :class:`LineageTracker` rides along one query execution.  Scan
operators report every input page they deliver (in wrapped circular-scan
order) through :meth:`scan_page`; the engine's root pull loop reports
every emitted batch through :meth:`on_root_batch`.  From the two streams
the tracker derives the **recovery frontier**: the longest prefix of
input pages whose output the client has already received, which is
exactly the work a resumed query may skip.

The tracker is deliberately conservative.  It understands two plan
shapes well enough to resume them -- a bare :class:`TableScan` (page
resume) and ``Aggregate(TableScan)`` (checkpoint resume) -- and for
everything else it records nothing and recovery degrades to a clean
restart, which is always correct.  Any surprise in the page stream
(wrong table, non-contiguous page, more pages than the table holds)
marks the tracker *broken* and likewise degrades to restart: lineage is
an optimisation, never a correctness dependency.
"""

from __future__ import annotations

import bisect
from typing import Any, Generator, List, Optional

from repro.faults.errors import LogWriteError
from repro.lineage.log import LineageLog
from repro.relational.plans import Aggregate, TableScan


def resume_shape(plan) -> Optional[str]:
    """Which resume strategy fits ``plan``: ``scan``, ``agg`` or None."""
    if isinstance(plan, TableScan):
        return "scan"
    if isinstance(plan, Aggregate) and isinstance(plan.child, TableScan):
        return "agg"
    return None


class LineageTracker:
    """Tracks one query's input-page / output-row lineage."""

    def __init__(self, sim, log: LineageLog, plan, flush_every: int = 4):
        self.sim = sim
        self.log = log
        self.query_id = log.query_id
        self.mode = resume_shape(plan)
        self.flush_every = flush_every
        #: Rows the client has received so far (survives a server-side
        #: crash: the client keeps its prefix and asks for the rest).
        self.received: List[tuple] = []
        self.rows = 0
        #: False once the lineage log is unusable (log write error):
        #: the query keeps running, recovery degrades to clean restart.
        self.enabled = True
        # -- the tracked scan stream (single table, wrapped order) -----
        self.table: Optional[str] = None
        self.first_page: Optional[int] = None
        self.num_pages: Optional[int] = None
        self._stream: Optional[tuple] = None
        #: rows_out per delivered page, in delivery order.
        self._page_rows: List[int] = []
        #: cumulative rows_out (``_cum[i]`` = rows after page ``i``).
        self._cum: List[int] = []
        self.broken = False
        self._last_k = 0
        self._since_flush = 0

    # ------------------------------------------------------------------
    # Scan side (host-side, called from scan operators; no sim yields)
    # ------------------------------------------------------------------
    def scan_page(
        self, stream, table: str, page_no: int, rows_out: int,
        num_pages: int,
    ) -> None:
        """Record one delivered input page (post-filter ``rows_out``).

        Pages must arrive in wrapped circular order starting wherever the
        consumer attached; any deviation marks the tracker broken.
        """
        if self.broken or self.mode is None:
            return
        if self.table is None:
            self.table = table
            self.first_page = page_no
            self.num_pages = num_pages
            self._stream = stream
        else:
            if table != self.table or num_pages != self.num_pages:
                self.broken = True
                return
            if len(self._page_rows) >= num_pages:
                # A full pass already delivered every page once.
                self.broken = True
                return
            expected = (self.first_page + len(self._page_rows)) % num_pages
            if page_no != expected:
                self.broken = True
                return
            # A new stream continuing at the expected page is a resumed
            # scan picking up the frontier -- adopt it.
            self._stream = stream
        self._page_rows.append(rows_out)
        self._cum.append((self._cum[-1] if self._cum else 0) + rows_out)

    def frontier(self) -> Optional[tuple]:
        """``(pages, covered_rows)``: the longest page prefix whose
        output is wholly contained in the rows delivered so far."""
        if self.broken or self.table is None:
            return None
        k = bisect.bisect_right(self._cum, self.rows)
        covered = self._cum[k - 1] if k else 0
        return (k, covered)

    # ------------------------------------------------------------------
    # Root side (client coroutine context; may yield for log flushes)
    # ------------------------------------------------------------------
    def on_root_batch(self, batch) -> Generator:
        """Coroutine: the query root emitted ``batch`` to the client."""
        self.received.extend(batch)
        self.rows += len(batch)
        if not self.enabled or self.mode != "scan":
            return
        fr = self.frontier()
        if fr is None:
            return
        k, covered = fr
        if k <= self._last_k:
            return
        self._last_k = k
        self.log.append(
            "batch", rows=covered, table=self.table,
            first_page=self.first_page, pages=k,
        )
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            yield from self._flush()

    def checkpoint(self, consumed: int, payload: Any) -> Generator:
        """Coroutine: a stateful breaker snapshotted its accumulator
        state after ``consumed`` child rows.  Recorded (and immediately
        flushed) only when ``consumed`` lands exactly on a page
        boundary of the tracked scan, so the resumed scan can replay
        precisely the unconsumed suffix."""
        if not self.enabled or self.mode != "agg" or self.broken:
            return
        if self.table is None:
            return
        k = bisect.bisect_right(self._cum, consumed)
        if k == 0 or self._cum[k - 1] != consumed:
            return
        self.log.append(
            "checkpoint", rows=consumed, table=self.table,
            first_page=self.first_page, pages=k, payload=payload,
        )
        yield from self._flush()

    def _flush(self) -> Generator:
        self._since_flush = 0
        try:
            yield from self.log.flush()
        except LogWriteError:
            self.enabled = False
            self.sim.tracer.lineage(
                "disabled", query=self.query_id, reason="log write error"
            )

    # ------------------------------------------------------------------
    # Recovery support
    # ------------------------------------------------------------------
    def rebase(self, kept_rows: int, kept_pages: int) -> None:
        """Truncate to a durable frontier before a resumed attempt:
        keep ``kept_rows`` delivered rows and ``kept_pages`` pages; the
        resumed scan's first page must continue the kept prefix."""
        del self.received[kept_rows:]
        self.rows = kept_rows
        del self._page_rows[kept_pages:]
        self._cum = self._cum[:kept_pages]
        self.broken = False
        self._last_k = kept_pages
        self._since_flush = 0

    def reset(self) -> None:
        """Forget everything before a clean restart."""
        self.received = []
        self.rows = 0
        self.table = None
        self.first_page = None
        self.num_pages = None
        self._stream = None
        self._page_rows = []
        self._cum = []
        self.broken = False
        self._last_k = 0
        self._since_flush = 0
