"""Write-ahead lineage and mid-query recovery.

Queries record a compact input-page -> output-batch lineage log on a
WAL-style sequential log device while they run; after a crash, the
:class:`RecoveryManager` consults the durable lineage frontier and
resumes from it -- re-scanning only unconsumed pages and restoring
checkpointed operator state -- instead of restarting from scratch.
Recovered results are byte-identical to the fault-free run.
"""

from repro.lineage.log import LineageLog, LineageRecord
from repro.lineage.recovery import RecoveryManager, RecoveryReport
from repro.lineage.tracker import LineageTracker, resume_shape

__all__ = [
    "LineageLog",
    "LineageRecord",
    "LineageTracker",
    "RecoveryManager",
    "RecoveryReport",
    "resume_shape",
]
