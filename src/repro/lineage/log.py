"""The per-query write-ahead lineage log.

A :class:`LineageLog` buffers compact :class:`LineageRecord` entries and
makes them durable on a dedicated sequential log device, charging one
block write per ``records_per_block`` buffered records -- the same
device model :class:`repro.storage.wal.WriteAheadLog` uses for
transaction records.  Records are self-checking: each carries a CRC-32
over its canonical JSON body, so a *torn* record (a flush the simulated
machine half-completed) is detected at recovery time and truncates the
durable frontier strictly before it -- recovery then degrades to a
clean restart, never to a wrong answer.

Fault hooks (armed by :class:`repro.faults.FaultInjector`):

* ``fail_next_flush`` -- the next :meth:`flush` raises
  :class:`~repro.faults.errors.LogWriteError` after consuming the flag;
  the tracker responds by disabling further recording.
* ``tear_next_flush`` -- the next flush "succeeds" but its tail record
  lands with a corrupted checksum.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, replace
from typing import Any, Generator, List, Optional

from repro.faults.errors import LogWriteError


def _body_blob(
    seq: int,
    kind: str,
    rows: int,
    table: Optional[str],
    first_page: Optional[int],
    pages: Optional[int],
    payload: Any,
) -> bytes:
    """The canonical serialised record body the checksum covers."""
    doc = [seq, kind, rows, table, first_page, pages, payload]
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class LineageRecord:
    """One lineage log entry.

    ``kind`` is ``batch`` (the query's root output reached ``rows``
    rows, wholly produced by ``pages`` input pages starting at
    ``first_page`` in wrapped scan order) or ``checkpoint`` (a stateful
    operator serialised its accumulator state in ``payload`` at an input
    frontier of ``rows`` child rows / ``pages`` pages).
    """

    seq: int
    kind: str
    rows: int
    table: Optional[str]
    first_page: Optional[int]
    pages: Optional[int]
    payload: Any
    checksum: int

    @classmethod
    def make(
        cls,
        seq: int,
        kind: str,
        rows: int,
        table: Optional[str] = None,
        first_page: Optional[int] = None,
        pages: Optional[int] = None,
        payload: Any = None,
    ) -> "LineageRecord":
        blob = _body_blob(seq, kind, rows, table, first_page, pages, payload)
        return cls(
            seq=seq,
            kind=kind,
            rows=rows,
            table=table,
            first_page=first_page,
            pages=pages,
            payload=payload,
            checksum=zlib.crc32(blob),
        )

    @property
    def intact(self) -> bool:
        blob = _body_blob(
            self.seq, self.kind, self.rows, self.table,
            self.first_page, self.pages, self.payload,
        )
        return zlib.crc32(blob) == self.checksum

    def to_wire(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "rows": self.rows,
            "table": self.table,
            "first_page": self.first_page,
            "pages": self.pages,
            "payload": self.payload,
            "checksum": self.checksum,
        }


class LineageLog:
    """An append-only, checksummed lineage log for one query."""

    def __init__(self, sim, device, query_id: int,
                 records_per_block: int = 16):
        self.sim = sim
        self.device = device
        self.query_id = query_id
        self.records_per_block = records_per_block
        self.records: List[LineageRecord] = []
        #: Index of the last durable record (-1: nothing flushed).
        self.flushed = -1
        self._next_block = 0
        #: Total simulated blocks written (reports / tests).
        self.blocks_written = 0
        # Injected-fault flags, armed by the FaultInjector.
        self.fail_next_flush = False
        self.fail_transient = True
        self.tear_next_flush = False
        self._torn_reported = False

    # ------------------------------------------------------------------
    def append(
        self,
        kind: str,
        rows: int,
        table: Optional[str] = None,
        first_page: Optional[int] = None,
        pages: Optional[int] = None,
        payload: Any = None,
    ) -> LineageRecord:
        record = LineageRecord.make(
            seq=len(self.records), kind=kind, rows=rows, table=table,
            first_page=first_page, pages=pages, payload=payload,
        )
        self.records.append(record)
        self.sim.tracer.lineage(
            "append", query=self.query_id, seq=record.seq, kind=kind
        )
        return record

    def flush(self) -> Generator:
        """Coroutine: force every buffered record to the log device.

        Charges sequential block writes like the WAL; raises
        :class:`LogWriteError` when an injected log fault is armed (the
        buffered records stay volatile -- nothing is lost on a flush
        failure except durability).
        """
        target = len(self.records) - 1
        if target <= self.flushed:
            return
        if self.fail_next_flush:
            self.fail_next_flush = False
            raise LogWriteError(self.query_id, transient=self.fail_transient)
        pending = target - self.flushed
        blocks = max(1, -(-pending // self.records_per_block))
        for _ in range(blocks):
            yield from self.device.write(0, self._next_block)
            self._next_block += 1
        self.blocks_written += blocks
        if self.tear_next_flush:
            # The tail record of this flush lands torn: its body is on
            # the device but the checksum no longer matches.
            self.tear_next_flush = False
            tail = self.records[target]
            self.records[target] = replace(
                tail, checksum=tail.checksum ^ 0xDEADBEEF
            )
        self.flushed = target
        self.sim.tracer.lineage(
            "flush", query=self.query_id, upto=target, blocks=blocks
        )

    # ------------------------------------------------------------------
    def durable(self) -> List[LineageRecord]:
        """The trustworthy durable prefix: flushed records, truncated
        strictly before the first checksum mismatch (write-ahead-log
        torn-tail semantics)."""
        out: List[LineageRecord] = []
        for record in self.records[: self.flushed + 1]:
            if not record.intact:
                if not self._torn_reported:
                    self._torn_reported = True
                    self.sim.tracer.lineage(
                        "torn", query=self.query_id, seq=record.seq
                    )
                break
            out.append(record)
        return out

    def serialize(self) -> str:
        """Deterministic JSONL of every record (determinism tests)."""
        return "\n".join(
            json.dumps(r.to_wire(), sort_keys=True, separators=(",", ":"))
            for r in self.records
        )
