"""Mid-query recovery: resume a crashed query from its lineage frontier.

:class:`RecoveryManager` wraps an engine's ``execute`` with a retry loop
that consults the query's durable lineage log after a fault instead of
blindly restarting:

* **scan resume** -- for a bare :class:`TableScan`, the last durable
  ``batch`` record names a page frontier the client already holds the
  output of.  The retry scans only the unconsumed suffix (a
  ``resume=(start, count)`` scan continuing the wrapped circular order)
  and the client stitches its kept prefix to the suffix rows.
* **checkpoint resume** -- for ``Aggregate(TableScan)``, the last durable
  ``checkpoint`` record carries the accumulator snapshot; the retry
  restores it, replays only the unconsumed page suffix through the
  engine, and folds the suffix rows into the restored states.
* **clean restart** -- everything else, or whenever the log is torn,
  disabled or empty.  Always correct; saves nothing.

The client-visible contract: the recovered result is byte-identical to
the fault-free run's result, for every fault schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.faults.errors import FaultError
from repro.hw.disk import Disk
from repro.lineage.log import LineageLog
from repro.lineage.tracker import LineageTracker, resume_shape
from repro.relational.expressions import bind_aggregates
from repro.relational.plans import TableScan
from repro.sim.errors import Interrupted


@dataclass
class RecoveryReport:
    """Outcome of one recovered query execution."""

    query_id: int
    rows: List[tuple]
    attempts: int = 1
    recoveries: int = 0
    clean_restarts: int = 0
    pages_saved: int = 0
    pages_total: int = 0
    log: Any = None
    events: List[str] = field(default_factory=list)


def _resumed_scan(scan: TableScan, start: int, count: int) -> TableScan:
    """Clone ``scan`` as a resumed suffix scan."""
    return TableScan(
        table=scan.table,
        predicate=scan.predicate,
        project=scan.project,
        ordered=scan.ordered,
        alias=scan.alias,
        resume=(start, count),
    )


class RecoveryManager:
    """Wraps one engine with lineage recording and mid-query recovery.

    One manager serves many queries; each :meth:`run` call gets its own
    lineage log on the shared (sequential, seek-free) log device, the
    same device model the WAL uses.
    """

    def __init__(self, engine, max_attempts: int = 5,
                 records_per_block: int = 16, flush_every: int = 4,
                 injector=None):
        self.engine = engine
        self.sm = engine.sm
        self.sim = engine.sm.sim
        self.max_attempts = max_attempts
        self.records_per_block = records_per_block
        self.flush_every = flush_every
        self.injector = injector
        self.device = Disk(
            self.sim,
            transfer_time=self.sm.host.config.disk_transfer_time,
            seek_time=0.0,
            name="lineage-log",
        )
        self.logs: dict = {}
        self._next_log = 0
        # Aggregate stats across every query this manager ran.
        self.recoveries = 0
        self.clean_restarts = 0
        self.pages_saved = 0

    # ------------------------------------------------------------------
    def run(self, plan) -> Generator:
        """Coroutine: execute ``plan`` with recovery; returns a
        :class:`RecoveryReport` whose ``rows`` match the fault-free run."""
        self._next_log += 1
        lid = self._next_log
        log = LineageLog(
            self.sim, self.device, query_id=lid,
            records_per_block=self.records_per_block,
        )
        self.logs[lid] = log
        if self.injector is not None:
            self.injector.register_lineage_log(log)
        tracker = LineageTracker(
            self.sim, log, plan, flush_every=self.flush_every
        )
        shape = resume_shape(plan)
        report = RecoveryReport(query_id=lid, rows=[], log=log)
        if shape is not None:
            scan = plan if shape == "scan" else plan.child
            report.pages_total = self.sm.num_pages(scan.table)
        attempt = 0
        resume: Optional[dict] = None
        while True:
            attempt += 1
            report.attempts = attempt
            try:
                if resume is None:
                    result = yield from self.engine.execute(
                        plan, lineage=tracker
                    )
                    rows = result.rows
                elif resume["mode"] == "scan":
                    child = _resumed_scan(
                        plan, resume["start"], resume["count"]
                    )
                    yield from self.engine.execute(child, lineage=tracker)
                    # Kept prefix (rebased) + suffix, stitched by the
                    # tracker's received list in delivery order.
                    rows = list(tracker.received)
                else:  # "agg"
                    child = _resumed_scan(
                        plan.child, resume["start"], resume["count"]
                    )
                    result = yield from self.engine.execute(
                        child, lineage=tracker
                    )
                    rows = yield from self._finish_agg(
                        plan, resume["payload"], result.rows
                    )
            except (FaultError, Interrupted) as exc:
                if attempt >= self.max_attempts:
                    raise
                report.events.append(f"fault: {exc}")
                resume = self._decide(plan, shape, tracker, log,
                                      report, attempt)
                continue
            report.rows = rows
            return report

    # ------------------------------------------------------------------
    def _decide(self, plan, shape, tracker: LineageTracker,
                log: LineageLog, report: RecoveryReport,
                attempt: int) -> Optional[dict]:
        """Consult the durable lineage and pick the next attempt's mode."""
        durable = log.durable()
        if shape == "scan":
            recs = [r for r in durable
                    if r.kind == "batch" and r.pages and r.table]
            if recs:
                rec = recs[-1]
                num_pages = self.sm.num_pages(rec.table)
                start = (rec.first_page + rec.pages) % num_pages
                count = num_pages - rec.pages
                tracker.rebase(rec.rows, rec.pages)
                self.recoveries += 1
                report.recoveries += 1
                report.pages_saved = rec.pages
                self.pages_saved += rec.pages
                self.sim.tracer.lineage(
                    "recover", query=log.query_id, mode="scan",
                    position=start, pages_saved=rec.pages,
                    rows_kept=rec.rows, attempt=attempt,
                )
                if count == 0:
                    # Every page was already delivered; resume degrades
                    # to an empty suffix -- nothing left to scan, but we
                    # still run the (zero-page) resumed scan for uniform
                    # control flow.
                    pass
                return {"mode": "scan", "start": start, "count": count}
        elif shape == "agg":
            cps = [r for r in durable
                   if r.kind == "checkpoint" and r.table]
            if cps:
                rec = cps[-1]
                num_pages = self.sm.num_pages(rec.table)
                start = (rec.first_page + rec.pages) % num_pages
                count = num_pages - rec.pages
                # The received rows of a failed (resumed) attempt are
                # scan-child rows, not query output: drop them, keep the
                # page-frontier prefix so contiguity checking continues.
                tracker.rebase(0, rec.pages)
                self.recoveries += 1
                report.recoveries += 1
                report.pages_saved = rec.pages
                self.pages_saved += rec.pages
                self.sim.tracer.lineage(
                    "recover", query=log.query_id, mode="agg",
                    position=start, pages_saved=rec.pages,
                    rows_kept=rec.rows, attempt=attempt,
                )
                return {"mode": "agg", "start": start, "count": count,
                        "payload": rec.payload}
        # Clean restart: always correct, saves nothing.
        tracker.reset()
        self.clean_restarts += 1
        report.clean_restarts += 1
        report.pages_saved = 0
        reason = "no usable lineage" if shape else "plan not resumable"
        self.sim.tracer.lineage(
            "restart", query=log.query_id, attempt=attempt, reason=reason
        )
        return None

    # ------------------------------------------------------------------
    def _finish_agg(self, plan, payload, suffix_rows) -> Generator:
        """Restore checkpointed accumulators, fold the replayed suffix,
        emit the single aggregate row (host-side fold, CPU charged at
        the engine's per-tuple rate)."""
        child_schema = plan.child.output_schema(self.sm.catalog)
        specs, fns = bind_aggregates(plan.aggs, child_schema)
        states = [spec.make_state() for spec in specs]
        for state, snap in zip(states, payload):
            count, total, best = snap
            state.count = count
            state.total = total
            state.best = best
        for row in suffix_rows:
            for state, fn in zip(states, fns):
                state.add(fn(row))
        cost = (
            len(suffix_rows) * len(states)
            * self.sm.host.config.cpu_per_tuple
        )
        if cost:
            yield from self.sm.host.cpu.burst(cost)
        return [tuple(state.result() for state in states)]
