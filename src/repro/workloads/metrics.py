"""Workload-level metrics: throughput, response times, I/O."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.results import QueryResult


@dataclass
class WorkloadMetrics:
    """Aggregated outcome of one workload run."""

    results: List[QueryResult] = field(default_factory=list)
    #: Disk blocks read during the measured window.
    blocks_read: int = 0
    blocks_written: int = 0
    #: Virtual time from first submission to last completion.
    makespan: float = 0.0
    #: Buffer pool hit ratio over the window.
    pool_hit_ratio: float = 0.0

    @property
    def queries_completed(self) -> int:
        return len(self.results)

    @property
    def throughput_qph(self) -> float:
        """Completed queries per (virtual) hour -- the Figure 1b/12 metric."""
        if self.makespan <= 0:
            return 0.0
        return self.queries_completed * 3600.0 / self.makespan

    @property
    def avg_response_time(self) -> float:
        """Mean response time in seconds -- the Figure 13 metric."""
        if not self.results:
            return 0.0
        return sum(r.response_time for r in self.results) / len(self.results)

    @property
    def max_response_time(self) -> float:
        if not self.results:
            return 0.0
        return max(r.response_time for r in self.results)

    def percentile_response_time(self, q: float) -> float:
        """The q-quantile (0..1) of response times, by nearest rank.

        The nearest-rank definition: the smallest response time r such
        that at least ``q * n`` of the observations are <= r, i.e. the
        value at (1-based) rank ``ceil(q * n)``.
        """
        if not self.results:
            return 0.0
        ordered = sorted(r.response_time for r in self.results)
        idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[idx]
