"""Workloads: TPC-H, the Wisconsin benchmark, and client drivers.

The paper evaluates with two datasets:

* a **4 GB TPC-H** database (standard dbgen/qgen) running queries
  Q1, Q4, Q6, Q8, Q12, Q13, Q14, Q19, and
* a **Wisconsin benchmark** database: two 8M-row 200-byte-tuple tables
  (BIG1, BIG2) and one 800K-row table (SMALL), total 4.5 GB.

Both are rebuilt here as scaled-down synthetic generators with the same
schemas and the value distributions the evaluated queries depend on.
Scale knobs live in :mod:`repro.harness.config`.
"""

from repro.workloads.clients import ClosedLoopClient, mixed_tpch_factory, run_workload
from repro.workloads.metrics import WorkloadMetrics

__all__ = [
    "ClosedLoopClient",
    "WorkloadMetrics",
    "mixed_tpch_factory",
    "run_workload",
]
