"""TPC-H table schemas, scaled-width edition.

Column sets follow the TPC-H specification; declared byte widths are
tuned so the row sizes (and therefore pages-per-table ratios) stay
proportional to dbgen's output.  Dates are integer days since
1970-01-01.  Two derived columns the specification computes with SQL
expressions are materialised at generation time because the expression
language has no EXTRACT:

* ``o_year`` -- EXTRACT(year FROM o_orderdate), used by Q8's group-by.
* ``o_prioclass`` -- 1 for '1-URGENT'/'2-HIGH' priorities else 0, the
  CASE condition of Q12.
"""

from __future__ import annotations

import datetime

from repro.relational.schema import Schema

_EPOCH = datetime.date(1970, 1, 1)


def date_int(year: int, month: int, day: int) -> int:
    """A calendar date as days since 1970-01-01."""
    return (datetime.date(year, month, day) - _EPOCH).days


#: First and last order dates in dbgen.
START_DATE = date_int(1992, 1, 1)
END_DATE = date_int(1998, 8, 2)


LINEITEM = Schema.of(
    "l_orderkey:int",
    "l_partkey:int",
    "l_suppkey:int",
    "l_linenumber:int",
    "l_quantity:float",
    "l_extendedprice:float",
    "l_discount:float",
    "l_tax:float",
    "l_returnflag:str:1",
    "l_linestatus:str:1",
    "l_shipdate:date",
    "l_commitdate:date",
    "l_receiptdate:date",
    "l_shipmode:str:10",
    "l_comment:str:27",  # pads the row to ~120 declared bytes
)

ORDERS = Schema.of(
    "o_orderkey:int",
    "o_custkey:int",
    "o_orderstatus:str:1",
    "o_totalprice:float",
    "o_orderdate:date",
    "o_year:int",
    "o_orderpriority:str:15",
    "o_prioclass:int",
    "o_comment:str:49",  # pads the row to ~100 declared bytes
)

PART = Schema.of(
    "p_partkey:int",
    "p_name:str:35",
    "p_mfgr:str:14",
    "p_brand:str:10",
    "p_type:str:25",
    "p_size:int",
    "p_container:str:10",
    "p_retailprice:float",
)

PARTSUPP = Schema.of(
    "ps_partkey:int",
    "ps_suppkey:int",
    "ps_availqty:int",
    "ps_supplycost:float",
)

CUSTOMER = Schema.of(
    "c_custkey:int",
    "c_name:str:18",
    "c_nationkey:int",
    "c_acctbal:float",
    "c_mktsegment:str:10",
)

SUPPLIER = Schema.of(
    "s_suppkey:int",
    "s_name:str:18",
    "s_nationkey:int",
)

NATION = Schema.of(
    "n_nationkey:int",
    "n_name:str:15",
    "n_regionkey:int",
)

REGION = Schema.of(
    "r_regionkey:int",
    "r_name:str:12",
)

TPCH_SCHEMAS = {
    "lineitem": LINEITEM,
    "orders": ORDERS,
    "part": PART,
    "partsupp": PARTSUPP,
    "customer": CUSTOMER,
    "supplier": SUPPLIER,
    "nation": NATION,
    "region": REGION,
}

SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
PRIORITIES = (
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW",
)
SEGMENTS = (
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD",
)
CONTAINERS = (
    "SM CASE", "SM BOX", "SM PACK", "SM PKG",
    "MED BAG", "MED BOX", "MED PKG", "MED PACK",
    "LG CASE", "LG BOX", "LG PACK", "LG PKG",
)
TYPE_SYLL1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLL2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_SYLL3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
)
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
#: nation index -> region index (dbgen's mapping).
NATION_REGION = (
    0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2,
    3, 3, 1,
)
