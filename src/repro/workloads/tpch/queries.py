"""Plan builders for the paper's TPC-H query mix.

The evaluation uses Q1, Q4, Q6, Q8, Q12, Q13, Q14, and Q19.  Each
builder returns a logical plan; passing a ``random.Random`` draws
qgen-like substitution parameters so that "multiple clients do not run
identical queries at the same time" (section 5.3) while still touching
the same tables.  Passing no RNG yields the validation parameters.

Simplifications relative to the SQL specification (documented in
DESIGN.md): Q4 counts qualifying order-lineitem *pairs* instead of an
EXISTS semijoin; Q8 omits the supplier-nation leg and reports total
volume per year rather than one nation's share; Q13 drops the comment
NOT-LIKE filter.  None of this changes which tables are read, which is
what the sharing experiments measure.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.relational.expressions import AggSpec, Col, If, InList, Like
from repro.relational.plans import (
    Aggregate,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    LeftOuterJoin,
    MergeJoin,
    PlanNode,
    SemiJoin,
    TableScan,
)
from repro.workloads.tpch.schema import (
    CONTAINERS,
    SHIP_MODES,
    TYPE_SYLL1,
    TYPE_SYLL2,
    TYPE_SYLL3,
    date_int,
)

_REVENUE = Col("l_extendedprice") * (Col("l_discount") * (-1) + 1)

#: Parameter seed for callers that pass no RNG (tests, ad-hoc plans).
DEFAULT_PARAM_SEED = 0


def _rng(rng: Optional[random.Random]) -> random.Random:
    return rng if rng is not None else random.Random(DEFAULT_PARAM_SEED)


def q1(rng: Optional[random.Random] = None) -> PlanNode:
    """Pricing summary report: one LINEITEM scan into an 8-agg group-by."""
    delta = _rng(rng).randrange(60, 121)
    cutoff = date_int(1998, 12, 1) - delta
    return GroupBy(
        TableScan("lineitem", predicate=Col("l_shipdate") <= cutoff),
        ["l_returnflag", "l_linestatus"],
        [
            AggSpec("sum", Col("l_quantity"), "sum_qty"),
            AggSpec("sum", Col("l_extendedprice"), "sum_base_price"),
            AggSpec("sum", _REVENUE, "sum_disc_price"),
            AggSpec(
                "sum",
                _REVENUE * (Col("l_tax") + 1),
                "sum_charge",
            ),
            AggSpec("avg", Col("l_quantity"), "avg_qty"),
            AggSpec("avg", Col("l_extendedprice"), "avg_price"),
            AggSpec("avg", Col("l_discount"), "avg_disc"),
            AggSpec("count", None, "count_order"),
        ],
    )


def _q4_predicates(rng: Optional[random.Random]):
    r = _rng(rng)
    month_index = r.randrange(0, 58)  # 1993-01 .. 1997-10
    year = 1993 + month_index // 12
    month = 1 + month_index % 12
    lo = date_int(year, month, 1)
    hi = lo + 90
    order_pred = (Col("o_orderdate") >= lo) & (Col("o_orderdate") < hi)
    line_pred = Col("l_commitdate") < Col("l_receiptdate")
    return order_pred, line_pred


def _q4_aggs(flavor: str):
    """Figures 9/11 submit two Q4 instances that must share the *join*
    but not the whole plan; the flavor varies the root aggregate the way
    qgen varies substitution parameters."""
    if flavor == "count":
        return [AggSpec("count", None, "order_count")]
    return [AggSpec("sum", Col("l_extendedprice"), "order_revenue")]


def q4_merge(
    rng: Optional[random.Random] = None, flavor: str = "count"
) -> PlanNode:
    """Order priority checking via merge-join over clustered index scans
    (the Figure 9 plan: the group-by above the join is order-insensitive,
    so late arrivals can exploit the section 4.3.2 split)."""
    order_pred, line_pred = _q4_predicates(rng)
    return GroupBy(
        MergeJoin(
            IndexScan(
                "orders", "o_orderkey_idx", ordered=True,
                predicate=order_pred,
            ),
            IndexScan(
                "lineitem", "l_orderkey_idx", ordered=True,
                predicate=line_pred,
            ),
            "o_orderkey",
            "l_orderkey",
        ),
        ["o_orderpriority"],
        _q4_aggs(flavor),
    )


def q4_hash(
    rng: Optional[random.Random] = None, flavor: str = "count"
) -> PlanNode:
    """Order priority checking via hybrid hash join (the Figure 11 plan:
    the ORDERS build phase is a full overlap)."""
    order_pred, line_pred = _q4_predicates(rng)
    return GroupBy(
        HashJoin(
            TableScan("orders", predicate=order_pred),
            TableScan("lineitem", predicate=line_pred),
            "o_orderkey",
            "l_orderkey",
        ),
        ["o_orderpriority"],
        _q4_aggs(flavor),
    )


def q4_exists(rng: Optional[random.Random] = None) -> PlanNode:
    """Specification-exact Q4: each qualifying order counted ONCE via an
    EXISTS semijoin against late lineitems (the join variants above count
    order-lineitem pairs, which is what the sharing figures measure)."""
    order_pred, line_pred = _q4_predicates(rng)
    return GroupBy(
        SemiJoin(
            TableScan("orders", predicate=order_pred),
            TableScan("lineitem", predicate=line_pred),
            "o_orderkey",
            "l_orderkey",
        ),
        ["o_orderpriority"],
        [AggSpec("count", None, "order_count")],
    )


def q6(rng: Optional[random.Random] = None) -> PlanNode:
    """Forecasting revenue change: one highly-selective LINEITEM scan
    into a single aggregate -- 99% of its time is the unordered table
    scan (section 5.1.1)."""
    r = _rng(rng)
    year = r.randrange(1993, 1998)
    discount = r.randrange(2, 10) / 100.0
    quantity = r.randrange(24, 26)
    lo, hi = date_int(year, 1, 1), date_int(year + 1, 1, 1)
    predicate = (
        (Col("l_shipdate") >= lo)
        & (Col("l_shipdate") < hi)
        & (Col("l_discount") >= round(discount - 0.011, 3))
        & (Col("l_discount") <= round(discount + 0.011, 3))
        & (Col("l_quantity") < quantity)
    )
    return Aggregate(
        TableScan("lineitem", predicate=predicate),
        [AggSpec("sum", Col("l_extendedprice") * Col("l_discount"), "revenue")],
    )


def q8(rng: Optional[random.Random] = None) -> PlanNode:
    """Market-share style query: PART (one type) x LINEITEM x ORDERS
    (two years), volume per order year."""
    r = _rng(rng)
    ptype = " ".join(
        (r.choice(TYPE_SYLL1), r.choice(TYPE_SYLL2), r.choice(TYPE_SYLL3))
    )
    lo, hi = date_int(1995, 1, 1), date_int(1996, 12, 31)
    part_line = HashJoin(
        TableScan("part", predicate=Col("p_type") == ptype),
        TableScan("lineitem"),
        "p_partkey",
        "l_partkey",
    )
    joined = HashJoin(
        TableScan(
            "orders",
            predicate=(Col("o_orderdate") >= lo) & (Col("o_orderdate") <= hi),
        ),
        part_line,
        "o_orderkey",
        "l_orderkey",
    )
    return GroupBy(
        joined,
        ["o_year"],
        [AggSpec("sum", _REVENUE, "volume")],
    )


def q12(rng: Optional[random.Random] = None) -> PlanNode:
    """Shipping modes and order priority: ORDERS x LINEITEM (two ship
    modes, one receipt year), priority-class counts per mode."""
    r = _rng(rng)
    mode1, mode2 = r.sample(SHIP_MODES, 2)
    year = r.randrange(1993, 1998)
    lo, hi = date_int(year, 1, 1), date_int(year + 1, 1, 1)
    line_pred = (
        InList(Col("l_shipmode"), [mode1, mode2])
        & (Col("l_commitdate") < Col("l_receiptdate"))
        & (Col("l_shipdate") < Col("l_commitdate"))
        & (Col("l_receiptdate") >= lo)
        & (Col("l_receiptdate") < hi)
    )
    return GroupBy(
        HashJoin(
            TableScan("orders"),
            TableScan("lineitem", predicate=line_pred),
            "o_orderkey",
            "l_orderkey",
        ),
        ["l_shipmode"],
        [
            AggSpec("sum", If(Col("o_prioclass") == 1, 1, 0), "high_line"),
            AggSpec("sum", If(Col("o_prioclass") == 0, 1, 0), "low_line"),
        ],
    )


def q13(rng: Optional[random.Random] = None) -> PlanNode:
    """Customer order-count distribution: CUSTOMER x ORDERS grouped to
    per-customer counts, regrouped to the count histogram.

    Inner-join variant (customers with no orders are absent); the
    specification-exact outer-join form is :func:`q13_outer`.
    """
    per_customer = GroupBy(
        HashJoin(
            TableScan("customer"),
            TableScan("orders"),
            "c_custkey",
            "o_custkey",
        ),
        ["c_custkey"],
        [AggSpec("count", None, "c_count")],
    )
    return GroupBy(
        per_customer,
        ["c_count"],
        [AggSpec("count", None, "custdist")],
    )


def q13_outer(rng: Optional[random.Random] = None) -> PlanNode:
    """Specification-exact Q13: LEFT OUTER JOIN, so customers without
    orders land in the c_count = 0 bucket.  Orderless rows are NULL-padded
    on the orders side; counting a 0/1 indicator over o_orderkey gives
    COUNT(o_orderkey) semantics (NULLs do not count)."""
    per_customer = GroupBy(
        LeftOuterJoin(
            TableScan("customer"),
            TableScan("orders"),
            "c_custkey",
            "o_custkey",
        ),
        ["c_custkey"],
        [
            AggSpec(
                "sum",
                If(Col("o_orderkey") == None, 0, 1),  # noqa: E711
                "c_count",
            )
        ],
    )
    return GroupBy(
        per_customer,
        ["c_count"],
        [AggSpec("count", None, "custdist")],
    )


def q14(rng: Optional[random.Random] = None) -> PlanNode:
    """Promotion effect: LINEITEM (one ship month) x PART, promo revenue
    and total revenue in one pass."""
    r = _rng(rng)
    month_index = r.randrange(0, 60)  # 1993-01 .. 1997-12
    year = 1993 + month_index // 12
    month = 1 + month_index % 12
    lo = date_int(year, month, 1)
    hi = date_int(year + (month == 12), month % 12 + 1, 1)
    return Aggregate(
        HashJoin(
            TableScan("part"),
            TableScan(
                "lineitem",
                predicate=(Col("l_shipdate") >= lo) & (Col("l_shipdate") < hi),
            ),
            "p_partkey",
            "l_partkey",
        ),
        [
            AggSpec(
                "sum",
                If(Like(Col("p_type"), "PROMO%"), _REVENUE, 0.0),
                "promo_revenue",
            ),
            AggSpec("sum", _REVENUE, "total_revenue"),
        ],
    )


def q19(rng: Optional[random.Random] = None) -> PlanNode:
    """Discounted revenue: LINEITEM x PART with three OR-ed brackets of
    brand/container/quantity conditions as a residual filter."""
    r = _rng(rng)
    quantities = [r.randrange(1, 11), r.randrange(10, 21), r.randrange(20, 31)]
    brands = [
        f"Brand#{r.randrange(1, 6)}{r.randrange(1, 6)}" for _ in range(3)
    ]
    small = [c for c in CONTAINERS if c.startswith("SM")]
    medium = [c for c in CONTAINERS if c.startswith("MED")]
    large = [c for c in CONTAINERS if c.startswith("LG")]
    bracket1 = (
        (Col("p_brand") == brands[0])
        & InList(Col("p_container"), small)
        & (Col("l_quantity") >= quantities[0])
        & (Col("l_quantity") <= quantities[0] + 10)
        & (Col("p_size") >= 1)
        & (Col("p_size") <= 5)
    )
    bracket2 = (
        (Col("p_brand") == brands[1])
        & InList(Col("p_container"), medium)
        & (Col("l_quantity") >= quantities[1])
        & (Col("l_quantity") <= quantities[1] + 10)
        & (Col("p_size") >= 1)
        & (Col("p_size") <= 10)
    )
    bracket3 = (
        (Col("p_brand") == brands[2])
        & InList(Col("p_container"), large)
        & (Col("l_quantity") >= quantities[2])
        & (Col("l_quantity") <= quantities[2] + 10)
        & (Col("p_size") >= 1)
        & (Col("p_size") <= 15)
    )
    joined = HashJoin(
        TableScan("part"),
        TableScan(
            "lineitem",
            predicate=InList(Col("l_shipmode"), ["AIR", "REG AIR"]),
        ),
        "p_partkey",
        "l_partkey",
    )
    return Aggregate(
        Filter(joined, bracket1 | bracket2 | bracket3),
        [AggSpec("sum", _REVENUE, "revenue")],
    )


#: Name -> builder, for the mixed-workload driver (hash-join plans
#: throughout, matching section 5.3: "We use hybrid hash joins
#: exclusively for all the join parts of the query plans").
QUERY_BUILDERS = {
    "q1": q1,
    "q4": q4_hash,
    "q6": q6,
    "q8": q8,
    "q12": q12,
    "q13": q13,
    "q14": q14,
    "q19": q19,
}
