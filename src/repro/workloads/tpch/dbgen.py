"""A dbgen-like synthetic TPC-H generator.

Row counts scale with a single factor; value distributions follow the
parts of dbgen's behaviour that the evaluated queries actually depend
on (date ranges and correlations, discount/quantity ranges, part type
and brand vocabularies, priority skew).  Comments are deterministic
filler -- the queries never read them, they only size the rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.storage.manager import StorageManager
from repro.workloads.tpch import schema as S


@dataclass(frozen=True)
class TpchScale:
    """Row counts per table; ``factor`` multiplies all of them.

    ``factor=1.0`` is the harness default (~60k lineitem rows, the
    geometry DESIGN.md section 5 describes); tests use much less.
    """

    factor: float = 1.0

    @property
    def orders(self) -> int:
        return max(10, int(15_000 * self.factor))

    @property
    def customers(self) -> int:
        return max(5, int(1_500 * self.factor))

    @property
    def parts(self) -> int:
        return max(10, int(2_000 * self.factor))

    @property
    def suppliers(self) -> int:
        return max(3, int(100 * self.factor))


#: Memo for generated datasets, keyed by (factor, seed).  Generation is a
#: pure function of those two values, and regenerating identical tables
#: for every experiment data point dominated macro wall-clock (DESIGN.md
#: section 10).  Rows are immutable tuples; callers get fresh list copies
#: so loaded tables stay independent of the cache.
_GENERATED_CACHE: Dict[tuple, Dict[str, List[tuple]]] = {}
_GENERATED_CACHE_MAX = 8


def generate_tpch(scale: TpchScale, seed: int = 1) -> Dict[str, List[tuple]]:
    """All eight tables as row lists, keyed by table name."""
    key = (scale.factor, seed)
    cached = _GENERATED_CACHE.get(key)
    if cached is None:
        cached = _generate_tpch(scale, seed)
        if len(_GENERATED_CACHE) >= _GENERATED_CACHE_MAX:
            _GENERATED_CACHE.pop(next(iter(_GENERATED_CACHE)))
        _GENERATED_CACHE[key] = cached
    return {name: list(rows) for name, rows in cached.items()}


def _generate_tpch(scale: TpchScale, seed: int) -> Dict[str, List[tuple]]:
    rng = random.Random(seed)
    tables: Dict[str, List[tuple]] = {}

    tables["region"] = [
        (i, name) for i, name in enumerate(S.REGIONS)
    ]
    tables["nation"] = [
        (i, name, S.NATION_REGION[i]) for i, name in enumerate(S.NATIONS)
    ]
    tables["supplier"] = [
        (i + 1, f"Supplier#{i + 1:09d}", rng.randrange(len(S.NATIONS)))
        for i in range(scale.suppliers)
    ]
    tables["customer"] = [
        (
            i + 1,
            f"Customer#{i + 1:09d}",
            rng.randrange(len(S.NATIONS)),
            round(rng.uniform(-999.99, 9999.99), 2),
            rng.choice(S.SEGMENTS),
        )
        for i in range(scale.customers)
    ]

    parts: List[tuple] = []
    for i in range(scale.parts):
        partkey = i + 1
        ptype = " ".join(
            (
                rng.choice(S.TYPE_SYLL1),
                rng.choice(S.TYPE_SYLL2),
                rng.choice(S.TYPE_SYLL3),
            )
        )
        brand = f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}"
        retail = round(90000 + (partkey / 10) % 20001 + 100 * (partkey % 1000), 2) / 100
        parts.append(
            (
                partkey,
                f"part name {partkey}",
                f"Manufacturer#{rng.randrange(1, 6)}",
                brand,
                ptype,
                rng.randrange(1, 51),
                rng.choice(S.CONTAINERS),
                retail,
            )
        )
    tables["part"] = parts

    tables["partsupp"] = [
        (
            p + 1,
            rng.randrange(scale.suppliers) + 1,
            rng.randrange(1, 10000),
            round(rng.uniform(1.0, 1000.0), 2),
        )
        for p in range(scale.parts)
        for _copy in range(2)
    ]

    orders: List[tuple] = []
    lineitems: List[tuple] = []
    for i in range(scale.orders):
        orderkey = i + 1
        custkey = rng.randrange(scale.customers) + 1
        orderdate = rng.randrange(S.START_DATE, S.END_DATE - 151)
        year = 1970 + orderdate // 365  # close enough for grouping
        priority = rng.choice(S.PRIORITIES)
        prioclass = 1 if priority[0] in "12" else 0
        n_lines = rng.randrange(1, 8)
        total = 0.0
        all_f = True
        for line_no in range(1, n_lines + 1):
            partkey = rng.randrange(scale.parts) + 1
            suppkey = rng.randrange(scale.suppliers) + 1
            quantity = float(rng.randrange(1, 51))
            price = round(quantity * parts[partkey - 1][7], 2)
            discount = round(rng.randrange(0, 11) / 100.0, 2)
            tax = round(rng.randrange(0, 9) / 100.0, 2)
            shipdate = orderdate + rng.randrange(1, 122)
            commitdate = orderdate + rng.randrange(30, 91)
            receiptdate = shipdate + rng.randrange(1, 31)
            current = S.END_DATE - 100
            if receiptdate <= current:
                returnflag = rng.choice(("R", "A"))
            else:
                returnflag = "N"
            linestatus = "F" if shipdate <= current else "O"
            if linestatus != "F":
                all_f = False
            total += price * (1 + tax) * (1 - discount)
            lineitems.append(
                (
                    orderkey,
                    partkey,
                    suppkey,
                    line_no,
                    quantity,
                    price,
                    discount,
                    tax,
                    returnflag,
                    linestatus,
                    shipdate,
                    commitdate,
                    receiptdate,
                    rng.choice(S.SHIP_MODES),
                    "c" * 8,
                )
            )
        status = "F" if all_f else "O"
        orders.append(
            (
                orderkey,
                custkey,
                status,
                round(total, 2),
                orderdate,
                year,
                priority,
                prioclass,
                "c" * 8,
            )
        )
    tables["orders"] = orders
    tables["lineitem"] = lineitems
    return tables


def load_tpch(
    sm: StorageManager,
    scale: TpchScale,
    seed: int = 1,
    with_indexes: bool = True,
) -> Dict[str, List[tuple]]:
    """Create, load, and index all TPC-H tables; returns the raw rows.

    Orders and lineitem are clustered on their order keys (dbgen emits
    them in that order), which is what the paper's merge-join plans for
    Q4 exploit.
    """
    tables = generate_tpch(scale, seed=seed)
    clustering = {
        "lineitem": ["l_orderkey"],
        "orders": ["o_orderkey"],
        "part": ["p_partkey"],
        "customer": ["c_custkey"],
    }
    for name, schema in S.TPCH_SCHEMAS.items():
        sm.create_table(name, schema, clustered_on=clustering.get(name))
        sm.load_table(name, tables[name])
    if with_indexes:
        sm.create_index(
            "lineitem", ["l_orderkey"], name="l_orderkey_idx", clustered=True
        )
        sm.create_index(
            "orders", ["o_orderkey"], name="o_orderkey_idx", clustered=True
        )
        sm.create_index(
            "part", ["p_partkey"], name="p_partkey_idx", clustered=True
        )
        sm.create_index(
            "customer", ["c_custkey"], name="c_custkey_idx", clustered=True
        )
    return tables
