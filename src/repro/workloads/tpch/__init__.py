"""The TPC-H workload: schemas, dbgen-like data, qgen-like query plans."""

from repro.workloads.tpch.dbgen import TpchScale, generate_tpch, load_tpch
from repro.workloads.tpch.queries import (
    QUERY_BUILDERS,
    q1,
    q4_hash,
    q4_merge,
    q6,
    q8,
    q12,
    q13,
    q14,
    q19,
)
from repro.workloads.tpch.schema import TPCH_SCHEMAS, date_int

__all__ = [
    "QUERY_BUILDERS",
    "TPCH_SCHEMAS",
    "TpchScale",
    "date_int",
    "generate_tpch",
    "load_tpch",
    "q1",
    "q4_hash",
    "q4_merge",
    "q6",
    "q8",
    "q12",
    "q13",
    "q14",
    "q19",
]
