"""Client drivers: closed-loop clients with think time, staggered
arrivals, and the workload runner both engines plug into.

Engines are duck-typed: anything with an ``execute(plan)`` coroutine
returning a :class:`~repro.results.QueryResult` and an ``sm`` attribute
works -- :class:`~repro.engine.qpipe.QPipeEngine` and
:class:`~repro.baseline.engine.IteratorEngine` both do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Sequence

from repro.relational.plans import PlanNode
from repro.results import QueryResult
from repro.workloads.metrics import WorkloadMetrics

PlanFactory = Callable[[random.Random], PlanNode]


@dataclass
class ClosedLoopClient:
    """One client: submit, wait for the result, think, repeat.

    This is the TPC-H throughput-test client model the paper uses in
    sections 5.3 (zero think time) and Figure 13 (varying think time).

    Args:
        client_id: identifier.
        plan_factory: draws the next query plan (qgen-like).
        queries: how many queries this client submits in total.
        think_time: idle seconds between receiving a result and
            submitting the next query.
        start_delay: seconds before the first submission.
    """

    client_id: int
    plan_factory: PlanFactory
    queries: int = 1
    think_time: float = 0.0
    start_delay: float = 0.0
    results: List[QueryResult] = field(default_factory=list)

    def run(self, engine, rng: random.Random) -> Generator:
        sim = engine.sm.sim
        if self.start_delay > 0:
            yield sim.timeout(self.start_delay)
        for _ in range(self.queries):
            plan = self.plan_factory(rng)
            result = yield from engine.execute(plan)
            self.results.append(result)
            if self.think_time > 0:
                yield sim.timeout(self.think_time)


def run_workload(
    engine,
    clients: Sequence[ClosedLoopClient],
    seed: int = 42,
    until: Optional[float] = None,
) -> WorkloadMetrics:
    """Run all clients to completion on *engine*; returns the metrics.

    The disk/pool counters are windowed to this run (snapshots taken
    before and after), so several workloads can share one engine when an
    experiment needs warm state.
    """
    sm = engine.sm
    sim = sm.sim
    seed_rng = random.Random(seed)
    disk_before = sm.host.disk.stats.snapshot()
    pool_before = (sm.pool.stats.hits, sm.pool.stats.misses,
                   sm.pool.stats.coalesced)
    start = sim.now
    procs = [
        sim.spawn(client.run(engine, random.Random(seed_rng.randrange(2**31))),
                  name=f"client{client.client_id}")
        for client in clients
    ]
    if until is None:
        sim.run_until_done(procs)
    else:
        sim.run(until=until)
    disk_delta = sm.host.disk.stats.delta(disk_before)
    hits = sm.pool.stats.hits - pool_before[0]
    misses = sm.pool.stats.misses - pool_before[1]
    coalesced = sm.pool.stats.coalesced - pool_before[2]
    results: List[QueryResult] = []
    for client in clients:
        results.extend(client.results)
    finished = [r.finished_at for r in results]
    makespan = (max(finished) - start) if finished else 0.0
    accesses = hits + misses + coalesced
    return WorkloadMetrics(
        results=results,
        blocks_read=disk_delta.blocks_read,
        blocks_written=disk_delta.blocks_written,
        makespan=makespan,
        pool_hit_ratio=(hits + coalesced) / accesses if accesses else 0.0,
    )


def mixed_tpch_factory(
    builders: Sequence[Callable],
) -> PlanFactory:
    """A plan factory drawing uniformly from *builders* with qgen-like
    parameter randomisation (section 5.3's random query mix)."""

    def factory(rng: random.Random) -> PlanNode:
        builder = rng.choice(list(builders))
        return builder(rng)

    return factory
