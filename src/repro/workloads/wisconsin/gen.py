"""Wisconsin benchmark tables [DeWitt 91].

The paper uses 8M-row BIG1/BIG2 and an 800K-row SMALL, all 200-byte
tuples (4.5 GB total).  The generator keeps the classic column
semantics the queries rely on:

* ``unique1`` -- values 0..n-1, randomly permuted (candidate key),
* ``unique2`` -- values 0..n-1, sequential (clustering key),
* ``onepercent``/``tenpercent`` -- unique1 mod 100 / mod 10,
* string fillers padding the declared width to 200 bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.relational.schema import Schema
from repro.storage.manager import StorageManager

WISCONSIN_SCHEMA = Schema.of(
    "unique1:int",
    "unique2:int",
    "two:int",
    "four:int",
    "ten:int",
    "twenty:int",
    "onepercent:int",
    "tenpercent:int",
    "twentypercent:int",
    "fiftypercent:int",
    "unique3:int",
    "evenonepercent:int",
    "oddonepercent:int",
    "stringu1:str:52",
    "stringu2:str:52",
    "string4:str:44",
)


@dataclass(frozen=True)
class WisconsinScale:
    """Row counts; the paper's ratio big:small = 10:1 is preserved."""

    big_rows: int = 8_000
    @property
    def small_rows(self) -> int:
        return max(1, self.big_rows // 10)


_STRING4 = ("AAAAxxxx", "HHHHxxxx", "OOOOxxxx", "VVVVxxxx")


def _rows(n: int, rng: random.Random) -> List[tuple]:
    unique1 = list(range(n))
    rng.shuffle(unique1)
    rows = []
    for unique2, u1 in enumerate(unique1):
        rows.append(
            (
                u1,
                unique2,
                u1 % 2,
                u1 % 4,
                u1 % 10,
                u1 % 20,
                u1 % 100,
                u1 % 10,
                u1 % 5,
                u1 % 2,
                u1,
                (u1 % 100) * 2,
                (u1 % 100) * 2 + 1,
                f"A{u1:07d}" + "x" * 8,
                f"B{unique2:07d}" + "x" * 8,
                _STRING4[unique2 % 4],
            )
        )
    return rows


#: Memo keyed by (big_rows, seed) -- generation is a pure function of
#: them (see the TPC-H twin in :mod:`repro.workloads.tpch.dbgen`).
_GENERATED_CACHE: Dict[tuple, Dict[str, List[tuple]]] = {}
_GENERATED_CACHE_MAX = 8


def generate_wisconsin(
    scale: WisconsinScale, seed: int = 5
) -> Dict[str, List[tuple]]:
    key = (scale.big_rows, seed)
    cached = _GENERATED_CACHE.get(key)
    if cached is None:
        rng = random.Random(seed)
        cached = {
            "big1": _rows(scale.big_rows, rng),
            "big2": _rows(scale.big_rows, rng),
            "small": _rows(scale.small_rows, rng),
        }
        # Deterministic memo: the value is a pure function of the key
        # and eviction follows insertion order, so cell payloads cannot
        # observe whether the cache was warm.
        if len(_GENERATED_CACHE) >= _GENERATED_CACHE_MAX:
            _GENERATED_CACHE.pop(next(iter(_GENERATED_CACHE)))  # simlint: disable=IPR201
        _GENERATED_CACHE[key] = cached  # simlint: disable=IPR201
    return {name: list(rows) for name, rows in cached.items()}


def load_wisconsin(
    sm: StorageManager, scale: WisconsinScale, seed: int = 5
) -> Dict[str, List[tuple]]:
    """Create and load BIG1, BIG2, SMALL; returns the raw rows."""
    tables = generate_wisconsin(scale, seed=seed)
    for name, rows in tables.items():
        sm.create_table(name, WISCONSIN_SCHEMA)
        sm.load_table(name, rows)
    return tables
