"""Wisconsin benchmark query plans.

The Figure 10 experiment runs two similar **3-way sort-merge joins**
(the benchmark's join query family, e.g. query #17): BIG1 joins BIG2 on
``unique1`` after both are sorted, and the result joins SMALL.  The two
submitted queries share the BIG1/BIG2 sort subtrees (identical
predicates) but filter SMALL differently.
"""

from __future__ import annotations

from typing import Optional

from repro.relational.expressions import AggSpec, Col, Expr
from repro.relational.plans import (
    Aggregate,
    MergeJoin,
    PlanNode,
    Sort,
    TableScan,
)


def three_way_join(
    big_range: int = 1000,
    small_predicate: Optional[Expr] = None,
) -> PlanNode:
    """The Figure 10 plan: A over M-J(M-J(S(BIG1), S(BIG2)), S(SMALL)).

    Args:
        big_range: both BIG tables keep ``unique1 < big_range`` (the
            shared predicate; identical across the two queries).
        small_predicate: the SMALL-side filter that *differs* between
            the two submitted queries.
    """
    sorted_big1 = Sort(
        TableScan("big1", predicate=Col("unique1") < big_range,
                  alias="big1"),
        keys=["big1.unique1"],
    )
    sorted_big2 = Sort(
        TableScan("big2", predicate=Col("unique1") < big_range,
                  alias="big2"),
        keys=["big2.unique1"],
    )
    big_join = MergeJoin(
        sorted_big1, sorted_big2, "big1.unique1", "big2.unique1"
    )
    sorted_small = Sort(
        TableScan("small", predicate=small_predicate, alias="small"),
        keys=["small.unique1"],
    )
    final = MergeJoin(big_join, sorted_small, "big1.unique1", "small.unique1")
    return Aggregate(
        final,
        [
            AggSpec("count", None, "n"),
            AggSpec("sum", Col("small.unique2"), "s"),
        ],
    )
