"""The Wisconsin benchmark: BIG1, BIG2, SMALL and the 3-way join query."""

from repro.workloads.wisconsin.gen import (
    WISCONSIN_SCHEMA,
    WisconsinScale,
    generate_wisconsin,
    load_wisconsin,
)
from repro.workloads.wisconsin.queries import three_way_join

__all__ = [
    "WISCONSIN_SCHEMA",
    "WisconsinScale",
    "generate_wisconsin",
    "load_wisconsin",
    "three_way_join",
]
