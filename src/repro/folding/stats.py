"""Counters for the generalized-sharing (query folding) layer.

Mirrors :class:`repro.osp.stats.OspStats` so the harness can report both
sharing layers side by side: OSP shares *identical* work, folding shares
*similar* work (predicate subsumption + merged aggregation).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class FoldStats:
    """What the fold coordinator did during a run."""

    #: Fold groups opened (one wide scan each).
    groups: int = 0
    #: Members folded into a group, by kind ("scan" / "agg").
    members: Counter = field(default_factory=Counter)
    #: Candidates turned away, by reason ("window-closed", "not-subsumed",
    #: "ring-dropped", "buffer-full", "cost", ...).
    rejected: Counter = field(default_factory=Counter)
    #: Table pages the folded members did not have to read themselves.
    pages_saved: int = 0
    #: Wide-scan survivor rows run through per-member residual filters.
    residual_rows: int = 0
    #: Merged-aggregation accumulator banks created.
    banks: int = 0
    #: Members that fell back to private re-execution (host died).
    unfolds: int = 0

    @property
    def folded(self) -> int:
        return sum(self.members.values())

    @property
    def candidates(self) -> int:
        return self.folded + sum(self.rejected.values())

    def fold_rate(self) -> float:
        """Fraction of fold candidates that actually folded."""
        candidates = self.candidates
        return self.folded / candidates if candidates else 0.0

    def summary(self) -> str:
        members = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.members.items())
        ) or "none"
        rejected = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(self.rejected.items())
        ) or "none"
        return (
            f"fold groups: {self.groups}  members: {members}  "
            f"rejected: {rejected}\n"
            f"fold rate: {self.fold_rate():.2f}  "
            f"pages saved: {self.pages_saved}  "
            f"residual rows: {self.residual_rows}  "
            f"banks: {self.banks}  unfolds: {self.unfolds}"
        )
