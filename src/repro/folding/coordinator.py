"""Generalized sharing: fold similar concurrent queries into one scan.

OSP (section 4.3) shares *identical* in-progress work.  This layer folds
queries that are merely *similar*: when a new query's scan predicate is
subsumed by -- or unions cheaply with -- a scan another query already has
in flight or queued over the same table, the dispatcher attaches the new
query as a *fold member* instead of dispatching its own scan.  One wide
scan runs (the union of the members' predicates); each member receives
exactly the rows its own predicate + projection would have produced, via
a per-member residual filter compiled with the pushexec expression
codegen.  Whole ``Aggregate(TableScan)`` queries additionally fold their
aggregation into a shared accumulator bank (one accumulator per distinct
aggregate over the same folded scan), so N similar aggregate queries cost
one scan and one aggregation pass.

Correctness model:

* The group's scan always runs **standalone in canonical page order**
  (0..N-1, never a mid-file circular attach).  That makes the generic
  skip-by-count redispatch sound if the host dies mid-fold: a member's
  private re-execution replays the same canonical order and skips the
  tuples already delivered.
* Widening the predicate is only allowed while **no page has been
  filtered yet** (``blocks_done == 0``); after that, joiners must be
  subsumed by the wide predicate and are caught up from the survivor
  ring -- the window-of-opportunity analogue of OSP's WoP.
* A member's rows are byte-identical to its unfolded run because the
  residual filter is the member's own full predicate + projection applied
  to the wide-scan survivors (wide ⊇ member), in canonical page order.
* Fold members are ordinary satellites of the host scan packet: the
  generic rescue / completion / abort machinery (redispatch on host
  death, cancellation on their own query's abort) applies unchanged.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.engine.engines.aggregates import FoldBank
from repro.engine.packets import Packet, PacketState
from repro.folding.stats import FoldStats
from repro.pushexec.fusion import gen_filter, gen_scan_batch
from repro.relational.expressions import Or, bind_aggregates
from repro.relational.plans import Aggregate, TableScan
from repro.sql.planner import (
    fold_union,
    predicate_implies,
    predicate_selectivity,
)
from repro.storage.locks import LockMode


def _compile_residual(predicate, project, schema):
    """``survivors -> member rows``: the member's own filter + projection.

    Prefers the fused pushexec codegen; falls back to interpreted
    bind/projector for expressions the flat renderer cannot handle.
    """
    fn = gen_scan_batch(predicate, project, schema)
    if fn is not None:
        return fn
    pred = predicate.bind(schema) if predicate is not None else None
    proj = schema.projector(project) if project is not None else None
    if pred is None and proj is None:
        return list
    if pred is None:
        return lambda rows: [proj(row) for row in rows]
    if proj is None:
        return lambda rows: [row for row in rows if pred(row)]
    return lambda rows: [proj(row) for row in rows if pred(row)]


def _term_count(predicate) -> int:
    if predicate is None:
        return 0
    if isinstance(predicate, Or):
        return len(predicate.terms)
    return 1


class _Member:
    """One query folded into a group."""

    __slots__ = ("kind", "packet", "residual", "delivered_upto", "bank",
                 "sigs")

    def __init__(self, kind: str, packet: Packet):
        self.kind = kind          # "scan" or "agg"
        self.packet = packet
        self.residual = None      # scan members: survivors -> member rows
        self.delivered_upto = 0   # scan members: next canonical block
        self.bank = None          # agg members: shared accumulator bank
        self.sigs = None          # agg members: its own AggSpec signatures


class FoldGroup:
    """One wide scan over one table, shared by similar queries."""

    def __init__(self, coordinator: "FoldCoordinator", host: Packet):
        self.coordinator = coordinator
        self.engine = coordinator.engine
        self.sim = self.engine.sim
        self.table = host.plan.table
        self.host = host
        self.host_query = host.query
        #: Union of every member's scan predicate (None matches all).
        self.wide = host.plan.predicate
        self._wide_dirty = True
        self._wide_filter = None
        self.members: List[_Member] = []
        #: Accumulator banks keyed by member scan signature.
        self.banks: Dict[str, FoldBank] = {}
        #: Survivor ring: ``ring[i]`` is block i's wide-scan survivors,
        #: kept (bounded by ``replay_tuples``) so late joiners inside the
        #: window can be caught up without re-reading pages.
        self.ring: List[Tuple[int, List[tuple]]] = []
        self.ring_rows = 0
        self.dropped = False
        self.blocks_done = 0
        self.raw_rows = 0
        self.num_pages = self.engine.sm.num_pages(self.table)
        self.started = False
        self.closed = False
        host.artifacts["fold_group"] = self
        coordinator.stats.groups += 1
        self.sim.tracer.fold(
            "group_start", table=self.table, host=host.packet_id
        )

    # ------------------------------------------------------------------
    # Admission (called synchronously from the dispatcher)
    # ------------------------------------------------------------------
    def dead(self) -> bool:
        return (
            self.closed
            or self.host_query.aborted
            or self.host.state in (PacketState.DONE, PacketState.CANCELLED)
        )

    def try_join(self, kind: str, packet: Packet, scan: Packet) -> bool:
        """Admit *packet* as a fold member if the window allows it."""
        stats = self.coordinator.stats
        tracer = self.sim.tracer
        pred = scan.plan.predicate

        def reject(reason: str) -> bool:
            stats.rejected[reason] += 1
            tracer.fold(
                "reject", table=self.table,
                query=packet.query.query_id, reason=reason,
            )
            return False

        if self.dropped:
            return reject("ring-dropped")
        subsumed = predicate_implies(pred, self.wide)
        wide = self.wide
        if not subsumed:
            # Widening is only sound while no page has been filtered yet.
            if self.blocks_done > 0:
                return reject("window-closed")
            wide = fold_union(self.wide, pred)

        # Window-of-opportunity cost rule: fold only when the residual
        # filtering the member adds is cheaper than the I/O it saves.
        cfg = self.engine.host.config
        remaining = self.num_pages - self.blocks_done
        saved_io = remaining * cfg.disk_transfer_time
        if self.blocks_done:
            rows_per_page = self.raw_rows / self.blocks_done
        else:
            rows_per_page = (
                self.engine.sm.num_rows(self.table) / max(1, self.num_pages)
            )
        residual_cost = (
            remaining * rows_per_page
            * predicate_selectivity(wide)
            * cfg.cpu_per_tuple
        )
        if residual_cost >= saved_io:
            return reject("cost")

        catalog = self.engine.sm.catalog
        base = catalog.table_schema(self.table)
        member = _Member(kind, packet)
        replay: Optional[List[Tuple[int, List[tuple]]]] = None
        if kind == "scan":
            member.residual = _compile_residual(
                pred, scan.plan.project, base
            )
            if self.blocks_done:
                # Synchronous catch-up from the survivor ring: pre-check
                # that everything fits the member's (fresh, empty) buffer
                # so the non-blocking puts below cannot partially fail.
                replay = [
                    (block, member.residual(rows))
                    for block, rows in self.ring
                ]
                total = sum(len(rows) for _, rows in replay)
                if total > packet.primary_output.capacity:
                    return reject("buffer-full")

        # -- admitted: widen, attach as a satellite, catch up ------------
        if wide is not self.wide:
            self.wide = wide
            self._wide_dirty = True
            tracer.fold(
                "widen", table=self.table, host=self.host.packet_id,
                terms=_term_count(wide),
            )
        packet.state = PacketState.SATELLITE
        packet.host = self.host
        self.host.satellites.append(packet)
        tracer.packet_attach(
            packet, self.host, f"fold-{kind}",
            host_pages=self.blocks_done,
            subsumed=subsumed,
            ring_ok=not self.dropped,
        )
        if packet.children:
            # Aggregate member: its own scan child never runs.
            packet.cancel_subtree()
        self.members.append(member)
        stats.members[kind] += 1
        stats.pages_saved += self.num_pages

        if kind == "scan":
            if replay:
                lineage = packet.query.lineage
                for block, rows in replay:
                    if lineage is not None:
                        lineage.scan_page(
                            packet.stream, self.table, block, len(rows),
                            self.num_pages,
                        )
                    if rows:
                        # Pre-checked above; replay rides free of charge,
                        # mirroring the fan-out ring replay.
                        assert packet.primary_output.try_put(rows)
            member.delivered_upto = self.blocks_done
        else:
            self._enroll_agg(member, scan, base, catalog)
        return True

    def _enroll_agg(self, member: _Member, scan: Packet, base, catalog):
        """Fold the member's aggregation into the group's shared bank."""
        stats = self.coordinator.stats
        bank = self.banks.get(scan.signature)
        if bank is None:
            bank = FoldBank(
                _compile_residual(scan.plan.predicate, scan.plan.project,
                                  base),
                frontier=self.blocks_done,
            )
            self.banks[scan.signature] = bank
            stats.banks += 1
        plan = member.packet.plan
        specs, fns = bind_aggregates(
            plan.aggs, plan.child.output_schema(catalog)
        )
        member.bank = bank
        member.sigs, fresh = bank.enroll(specs, fns)
        if fresh and bank.upto:
            # Catch fresh accumulators up from the survivor ring; states
            # already in the bank cover this prefix and must not see it
            # twice.  ``bank.upto`` (not ``blocks_done``) bounds the
            # replay so a join landing mid-page stays exactly-once.
            for block, rows in self.ring[:bank.upto]:
                for row in bank.residual(rows):
                    for state, fn in fresh:
                        state.add(fn(row))

    # ------------------------------------------------------------------
    # The wide scan (runs as the host packet's serve coroutine)
    # ------------------------------------------------------------------
    def serve(self, packet: Packet) -> Generator:
        try:
            yield from self._scan()
        finally:
            self._close()

    def _wide_fn(self, base):
        if self._wide_dirty:
            self._wide_dirty = False
            if self.wide is None:
                self._wide_filter = None
            else:
                fn = gen_filter(self.wide, base)
                if fn is None:
                    pred = self.wide.bind(base)
                    fn = lambda rows: [row for row in rows if pred(row)]
                self._wide_filter = fn
        return self._wide_filter

    def _scan(self) -> Generator:
        sm = self.engine.sm
        host = self.host
        plan = host.plan
        base = sm.catalog.table_schema(self.table)
        host_residual = _compile_residual(plan.predicate, plan.project, base)
        mengine = self.engine.engines[host.engine_name]
        lineage = host.query.lineage
        # Section 4.3.4 as in the standalone scan: one table lock for the
        # whole pass; members do not lock individually (like satellites).
        owner = ("scan", host.query.query_id, host.packet_id)
        self.started = True
        yield sm.locks.acquire(owner, self.table, LockMode.SHARED)
        try:
            for block in range(self.num_pages):
                # Re-bound lazily: the predicate may have widened during
                # the previous page's I/O (only while blocks_done == 0).
                wide = self._wide_fn(base)
                page = yield from sm.read_table_page(
                    self.table, block, scan=True, stream=host.stream
                )
                rows = page.rows()
                self.raw_rows += len(rows)
                yield from mengine.charge(host, len(rows))
                survivors = wide(rows) if wide is not None else list(rows)
                self._remember(block, survivors)
                host_rows = host_residual(survivors)
                if lineage is not None:
                    lineage.scan_page(
                        host.stream, self.table, block, len(host_rows),
                        self.num_pages,
                    )
                if host_rows:
                    # Same intentional blocking-while-holding as the
                    # standalone scan: backpressure is the pacing.
                    yield from host.output.put(host_rows)  # simlint: disable=IPR102
                yield from self._deliver(block, survivors, mengine)
            yield from self._finish()
        finally:
            sm.locks.release_if_held(owner, self.table)

    def _remember(self, block: int, survivors: List[tuple]) -> None:
        self.blocks_done = block + 1
        if self.dropped:
            return
        self.ring.append((block, survivors))
        self.ring_rows += len(survivors)
        if self.ring_rows > self.engine.config.replay_tuples:
            # The window closes for new members; existing ones already
            # hold every block up to their own frontier.
            self.dropped = True
            self.ring = []
            self.ring_rows = 0
            self.sim.tracer.fold(
                "seal", table=self.table, host=self.host.packet_id,
                reason="ring-overflow",
            )

    def _deliver(self, block: int, survivors, mengine) -> Generator:
        stats = self.coordinator.stats
        for member in list(self.members):
            if member.kind != "scan":
                continue
            packet = member.packet
            if packet.state is not PacketState.SATELLITE:
                continue  # cancelled or redispatched; not ours any more
            if member.delivered_upto != block:
                continue  # ring replay already covered this block
            member.delivered_upto = block + 1
            rows = member.residual(survivors)
            stats.residual_rows += len(survivors)
            yield from mengine.charge(packet, len(survivors))
            lineage = packet.query.lineage
            if lineage is not None:
                lineage.scan_page(
                    packet.stream, self.table, block, len(rows),
                    self.num_pages,
                )
            if rows:
                yield from packet.output.put(rows)  # simlint: disable=IPR102
        for bank in list(self.banks.values()):
            if bank.upto != block:
                continue  # fresh bank; the ring replay covered this block
            bank.upto = block + 1
            live = [
                m for m in self.members
                if m.kind == "agg" and m.bank is bank
                and m.packet.state is PacketState.SATELLITE
            ]
            if not live:
                continue
            rows = bank.residual(survivors)
            stats.residual_rows += len(survivors)
            yield from mengine.charge(live[0].packet, len(rows) * len(bank))
            bank.add_batch(rows)

    def _finish(self) -> Generator:
        """Group EOF: emit merged-aggregate results, close member outputs.

        Members are completed *here*, not by the host's
        ``_complete_satellites`` sweep: closing a scan member's buffer can
        finish its consumer (and the whole member query) before the host
        packet itself completes, and the parent's early-finish cleanup
        would then silently cancel a satellite that delivered everything
        -- orphaning its attach in the trace.  Completing each member the
        moment its EOF goes out closes the lifecycle race; the host sweep
        skips them (no longer SATELLITE).
        """
        delivered = 0
        for member in list(self.members):
            packet = member.packet
            if packet.state is not PacketState.SATELLITE:
                continue
            delivered += 1
            if member.kind == "agg":
                row = member.bank.result_for(member.sigs)
                yield from packet.output.put([row])  # simlint: disable=IPR102
            packet.state = PacketState.DONE
            self.sim.tracer.packet_complete(packet)
            if packet.output is not None and not packet.output.closed:
                packet.output.close()
        self.sim.tracer.fold(
            "complete", table=self.table, host=self.host.packet_id,
            members=delivered, pages=self.num_pages,
        )

    # ------------------------------------------------------------------
    # Failure paths
    # ------------------------------------------------------------------
    def on_host_failure(self) -> None:
        """The host scan is dying mid-fold (crash, cancel, deadline).

        Emits the unfold evidence; the generic ``_rescue_satellites``
        sweep that calls this then redispatches every member through the
        PR 2 skip-by-count path (sound here because delivery was in
        canonical page order).
        """
        stats = self.coordinator.stats
        tracer = self.sim.tracer
        for member in list(self.members):
            if member.packet.state is PacketState.SATELLITE:
                stats.unfolds += 1
                tracer.fold(
                    "unfold", packet=member.packet.packet_id,
                    host=self.host.packet_id, reason="host failed mid-fold",
                )
        self._close()

    def _close(self) -> None:
        if self.closed:
            return
        self.closed = True
        registry = self.coordinator._groups
        if registry.get(self.table) is self:
            del registry[self.table]


class FoldCoordinator:
    """Per-engine registry of fold groups (one open group per table)."""

    def __init__(self, engine):
        self.engine = engine
        self.stats = FoldStats()
        self._groups: Dict[str, FoldGroup] = {}

    # ------------------------------------------------------------------
    def try_fold(self, query, root: Packet) -> bool:
        """Fold *query* into an open group, or open one around its scan.

        Returns True when the **whole** packet tree was absorbed (an
        ``Aggregate(TableScan)`` member) and nothing must be enqueued.
        Scan-leaf members return False: the leaf is now a satellite and
        ``enqueue_tree`` (which only enqueues CREATED packets) dispatches
        the rest of the tree normally.
        """
        candidate = self._candidate(root)
        if candidate is None:
            return False
        kind, packet, scan = candidate
        table = scan.plan.table
        group = self._groups.get(table)
        if group is not None and group.dead():
            del self._groups[table]
            group = None
        if group is None:
            # First similar query: its scan becomes the group host and
            # dispatches normally (FScanEngine routes it back to the
            # group's wide-scan loop via the fold_group artifact).
            self._groups[table] = FoldGroup(self, scan)
            return False
        if group.host_query is query:
            return False
        if not group.try_join(kind, packet, scan):
            return False
        return kind == "agg"

    # ------------------------------------------------------------------
    def _candidate(self, root: Packet):
        """Classify the packet tree: how could this query fold?

        * ``Aggregate(TableScan)`` roots fold whole (merged aggregation).
        * Otherwise a tree with exactly one foldable unordered scan leaf
          under an order-insensitive parent folds that leaf (residual
          delivery order is canonical, which such parents accept).
        """
        plan = root.plan
        if (
            isinstance(plan, Aggregate)
            and isinstance(plan.child, TableScan)
            and root.children
            and self._scan_foldable(root.children[0])
        ):
            return "agg", root, root.children[0]
        leaves = [
            p for p in root.descendants()
            if isinstance(p.plan, TableScan)
            and p.order_insensitive_parent
            and self._scan_foldable(p)
        ]
        if len(leaves) == 1:
            return "scan", leaves[0], leaves[0]
        return None

    @staticmethod
    def _scan_foldable(packet: Packet) -> bool:
        plan = packet.plan
        return (
            isinstance(plan, TableScan)
            and plan.resume is None
            and not plan.ordered
            and not packet.no_share
        )
