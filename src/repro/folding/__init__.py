"""Generalized sharing: fold similar concurrent queries.

Where OSP shares *identical* in-progress work (section 4.3), this layer
folds queries that are merely *similar*: predicate-subsumed scans ride
one widened scan with per-query residual filters, and concurrent
``Aggregate(TableScan)`` queries merge into a single aggregation pass
producing per-query projections.  See DESIGN.md §15.
"""

from repro.folding.coordinator import FoldCoordinator, FoldGroup
from repro.folding.stats import FoldStats

__all__ = ["FoldCoordinator", "FoldGroup", "FoldStats"]
