"""Content-addressed on-disk cache for cell results.

Key: SHA-256 of the cell's canonical fingerprint (figure, function,
scale, seeds, grid coordinates) plus the *relevant-source digest* -- a
hash of every source file the cell function's module transitively
imports, computed from the simlint import graph
(:mod:`repro.parallel.digest`).  Editing any reachable engine file busts
every dependent cell; editing docs, tests, or unreachable subsystems
leaves the cache warm.

Values are JSON documents under ``.repro-cache/<aa>/<hash>.json`` (the
two-character fan-out keeps directories small).  Payloads must therefore
be JSON-serialisable -- which cell payloads already are, because the
figure merge step renders them to text.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Any, Dict, Optional, Tuple

from repro.parallel.cells import CellSpec, fingerprint, spec_hash
from repro.parallel.digest import source_digest

#: Bump when the document layout changes incompatibly; part of the key
#: path so old entries are simply never found.
CACHE_VERSION = 1

DEFAULT_DIR = ".repro-cache"


def default_src_root() -> str:
    """The ``src/`` directory the installed ``repro`` package lives in."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class CellCache:
    """Get/put cell payloads by content address.

    ``source_digests`` may pre-seed the per-module digest table (tests
    inject synthetic digests to exercise invalidation without editing
    real sources); missing entries are computed on demand from the
    import graph of the cell function's module.
    """

    def __init__(
        self,
        directory: str = DEFAULT_DIR,
        src_root: Optional[str] = None,
        source_digests: Optional[Dict[str, str]] = None,
    ):
        self.directory = directory
        self.src_root = src_root or default_src_root()
        self._digests: Dict[str, str] = dict(source_digests or {})
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -- keying ---------------------------------------------------------
    def digest_for(self, spec: CellSpec) -> str:
        """The relevant-source digest of *spec*'s cell function module."""
        module = spec.fn.partition(":")[0]
        cached = self._digests.get(module)
        if cached is None:
            cached = source_digest(module, self.src_root)
            self._digests[module] = cached
        return cached

    def key(self, spec: CellSpec) -> str:
        return spec_hash(spec, self.digest_for(spec))

    def path(self, spec: CellSpec) -> str:
        key = self.key(spec)
        return os.path.join(
            self.directory, f"v{CACHE_VERSION}", key[:2], f"{key}.json"
        )

    # -- get / put ------------------------------------------------------
    def get(self, spec: CellSpec) -> Tuple[bool, Any]:
        """``(hit, payload)``; a corrupt or unreadable entry is a miss."""
        path = self.path(spec)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, doc["payload"]

    def put(self, spec: CellSpec, payload: Any) -> str:
        """Store *payload*; returns the entry path.  Atomic via rename
        so a killed run never leaves a truncated entry behind."""
        path = self.path(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {
            "version": CACHE_VERSION,
            "spec": fingerprint(spec),
            "sources": self.digest_for(spec),
            "payload": payload,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)
        self.puts += 1
        return path

    # -- maintenance ----------------------------------------------------
    def clear(self) -> None:
        """Delete the whole cache directory (``--cache-clear``)."""
        shutil.rmtree(self.directory, ignore_errors=True)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}
