"""PoolRunner: execute cells on a spawn-context process pool.

Determinism argument: a cell is a pure function of its frozen spec
(fresh seeded system per data point), so *where* and *in which order*
cells execute cannot change their payloads; the runner returns a
``{spec: result}`` mapping and the figure merge step re-orders by grid
coordinate, so ``--jobs N`` output is byte-identical to ``--jobs 1``.

Scheduling is work-stealing: cells are dealt round-robin onto one queue
per worker slot, each slot keeps exactly one cell in flight, and a slot
whose own queue drains *steals* from the tail of the longest remaining
queue (ties to the lowest slot index).  Cell runtimes are wildly uneven
-- a fig12 zero-interarrival cell simulates minutes of virtual time, an
overhead cell milliseconds -- so static dealing alone can leave a slot
idle behind a long queue while another still holds hours of work; the
steal path keeps every slot busy until the bag is empty without
affecting payloads (purity) or merged output (spec-order merges).

Failure handling reuses the :mod:`repro.faults` conventions: a worker
crash (the pool breaks) or an in-cell exception earns the cell one
retry; a second failure raises a typed
:class:`~repro.parallel.errors.CellError` naming the failing spec.
Crash *attribution* uses per-attempt scratch markers -- a worker touches
a marker before running its cell and removes it after -- because a
broken pool fails every outstanding future indiscriminately; only cells
whose marker is still on disk were actually running when the pool died,
so only those spend retry budget.

KeyboardInterrupt cancels every outstanding future, terminates the
worker processes, and re-raises -- ``python -m repro.harness`` must die
promptly on Ctrl-C instead of draining in-flight cells.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.parallel.cache import CellCache
from repro.parallel.cells import CellResult, CellSpec, execute_cell
from repro.parallel.errors import CellError


def _worker(spec: CellSpec, trace: bool, marker: Optional[str]) -> CellResult:
    """Top-level (picklable) worker entry: run one cell, bracketed by
    its crash-attribution marker."""
    if marker:
        with open(marker, "w"):
            pass
    result = execute_cell(spec, trace=trace)
    if marker:
        try:
            os.remove(marker)
        except OSError:
            pass
    return result


def steal_choice(queues, slot: int) -> Optional[int]:
    """Which queue slot *slot* should take its next cell from.

    Its own queue while non-empty; otherwise the longest other queue
    (ties to the lowest slot index) -- the steal; ``None`` when every
    queue is drained.  Own pulls take the queue head (FIFO, preserving
    deal order); steals take the tail, so a thief grabs the cell its
    victim would reach *last* and the two never contend for the same
    end of the deque.
    """
    if queues[slot]:
        return slot
    victim = max(range(len(queues)), key=lambda s: len(queues[s]))
    return victim if queues[victim] else None


def _spawn_executor(jobs: int) -> ProcessPoolExecutor:
    # spawn, not fork: workers must import the engine fresh so module
    # state (dbgen memos, tracer registries) never leaks between cells,
    # and the same start method runs on every platform.
    context = multiprocessing.get_context("spawn")
    return ProcessPoolExecutor(max_workers=jobs, mp_context=context)


@dataclass
class PoolStats:
    """Aggregate counters over every ``run()`` of one runner."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    retries: int = 0
    #: Cells an idle slot took from another slot's queue.
    steals: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0


class PoolRunner:
    """Execute bags of cells, optionally cached and multi-process.

    Args:
        jobs: worker processes; ``1`` runs serially in-process (the
            reference path), ``<= 0`` means ``os.cpu_count()``.
        cache: optional :class:`CellCache` consulted before executing
            and updated after.  Tracing runs bypass cache *reads* (trace
            events are not cached) but still record fresh payloads.
        trace: run every cell with packet-lifecycle tracing enabled.
        retries: extra attempts a failing cell gets before CellError.
        executor_factory: ``f(jobs) -> Executor`` override (tests inject
            fakes to script crashes and interrupts).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[CellCache] = None,
        trace: bool = False,
        retries: int = 1,
        executor_factory: Optional[Callable[[int], Any]] = None,
    ):
        self.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
        if executor_factory is None:
            # Real process pools gain nothing from more workers than
            # cores; on a 1-core machine ``--jobs 4`` used to pay four
            # spawn-context interpreter startups for strictly serial
            # execution (the macro.fig12_smoke_par4 regression).  Clamp
            # to the machine -- payloads are placement-independent, so
            # this only changes wall-clock.  Injected executor factories
            # are test fakes scripting crash scenarios: they need the
            # requested worker count verbatim, not the machine's.
            self.jobs = min(self.jobs, os.cpu_count() or 1)
        #: Real executors also adapt per run() to the cell count -- a
        #: sweep with fewer cells than workers never pays idle spawns,
        #: and an effective width of 1 bypasses the pool entirely so the
        #: parallel fabric can never lose to the serial path.
        self._adaptive = executor_factory is None
        self.cache = cache
        self.trace = trace
        self.retries = retries
        self._factory = executor_factory or _spawn_executor
        self._executor: Optional[Any] = None
        self._scratch: Optional[str] = None
        self.stats = PoolStats()

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "PoolRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._discard_executor(terminate=False)
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None

    def _ensure_executor(self) -> Any:
        if self._executor is None:
            self._executor = self._factory(self.jobs)
        return self._executor

    def _discard_executor(self, terminate: bool) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        executor.shutdown(wait=False, cancel_futures=True)
        if terminate:
            for proc in getattr(executor, "_processes", {}).values():
                proc.terminate()

    def _marker_dir(self) -> str:
        if self._scratch is None:
            self._scratch = tempfile.mkdtemp(prefix="repro-cells-")
        return self._scratch

    # -- execution ------------------------------------------------------
    def run(self, specs: Iterable[CellSpec]) -> Dict[CellSpec, CellResult]:
        """Execute *specs* (deduplicated, any order); returns
        ``{spec: CellResult}`` covering every requested spec."""
        ordered = list(dict.fromkeys(specs))
        self.stats.total += len(ordered)
        results: Dict[CellSpec, CellResult] = {}
        pending: List[CellSpec] = []
        for spec in ordered:
            if self.cache is not None and not self.trace:
                hit, payload = self.cache.get(spec)
                if hit:
                    results[spec] = CellResult(spec, payload, cached=True)
                    self.stats.cache_hits += 1
                    continue
            pending.append(spec)
        if not pending:
            return results
        jobs = self.jobs
        if self._adaptive:
            # effective jobs = min(requested, cpu_count, cell count);
            # the cpu_count half was clamped in the constructor.
            jobs = min(jobs, len(pending))
        if jobs <= 1:
            self._run_serial(pending, results)
        else:
            self._run_pool(pending, results, jobs)
        return results

    def _store(self, result: CellResult, results: Dict) -> None:
        results[result.spec] = result
        self.stats.executed += 1
        if self.cache is not None:
            _ = self.cache.put(result.spec, result.payload)

    def _run_serial(self, pending: List[CellSpec], results: Dict) -> None:
        for spec in pending:
            attempts = 0
            while True:
                attempts += 1
                try:
                    result = execute_cell(spec, trace=self.trace)
                    break
                except Exception as exc:
                    if attempts > self.retries:
                        raise CellError(spec, attempts, exc) from exc
                    self.stats.retries += 1
            result.attempts = attempts
            self._store(result, results)

    def _run_pool(
        self, pending: List[CellSpec], results: Dict, slots: int
    ) -> None:
        attempts: Dict[CellSpec, int] = {spec: 0 for spec in pending}
        markers: Dict[CellSpec, str] = {}
        #: future -> (spec, slot); each slot keeps one cell in flight.
        outstanding: Dict[Any, Any] = {}
        #: Per-slot run queues, dealt round-robin in spec order.
        queues: List[deque] = [deque() for _ in range(slots)]
        for i, spec in enumerate(pending):
            queues[i % slots].append(spec)

        def submit(
            spec: CellSpec, slot: int, count_attempt: bool = True
        ) -> None:
            # Always submit through self._ensure_executor(): recovery
            # discards the broken pool, and the next submit must land on
            # the replacement, not a stale local.
            if count_attempt:
                attempts[spec] += 1
            marker = os.path.join(
                self._marker_dir(),
                f"{spec.slug()}.a{attempts[spec]}.running",
            )
            markers[spec] = marker
            future = self._ensure_executor().submit(
                _worker, spec, self.trace, marker
            )
            outstanding[future] = (spec, slot)

        def next_cell(slot: int) -> Optional[CellSpec]:
            source = steal_choice(queues, slot)
            if source is None:
                return None
            if source == slot:
                return queues[slot].popleft()
            self.stats.steals += 1
            return queues[source].pop()

        def refill(slot: int) -> None:
            spec = next_cell(slot)
            if spec is not None:
                submit(spec, slot)

        for slot in range(slots):
            refill(slot)
        try:
            while outstanding:
                done, _ = wait(outstanding, return_when=FIRST_COMPLETED)
                broken: List[Any] = []
                for future in done:
                    spec, slot = outstanding.pop(future)
                    try:
                        result = future.result()
                    except KeyboardInterrupt:
                        raise
                    except BrokenExecutor:
                        broken.append((spec, slot))
                    except Exception as exc:
                        if attempts[spec] > self.retries:
                            raise CellError(
                                spec, attempts[spec], exc
                            ) from exc
                        self.stats.retries += 1
                        submit(spec, slot)
                    else:
                        result.attempts = attempts[spec]
                        self._store(result, results)
                        refill(slot)
                if broken:
                    self._recover(
                        broken, outstanding, attempts, markers, submit
                    )
        except KeyboardInterrupt:
            self._interrupt(outstanding)
            raise

    def _recover(
        self,
        broken: List[Any],
        outstanding: Dict[Any, Any],
        attempts: Dict[CellSpec, int],
        markers: Dict[CellSpec, str],
        submit: Callable,
    ) -> None:
        """A worker died and took the pool with it.  Rebuild the pool,
        charge retry budget to the cells that were actually running
        (their markers are still on disk), and resubmit the rest free.

        Only in-flight ``(spec, slot)`` pairs are victims; the per-slot
        queues are untouched -- queued cells were never submitted, so
        they drain normally once their slots refill."""
        victims = broken + list(outstanding.values())
        outstanding.clear()
        self._discard_executor(terminate=True)
        suspects = [
            spec
            for spec, _slot in victims
            if os.path.exists(markers.get(spec, ""))
        ]
        for spec in suspects:
            if attempts[spec] > self.retries:
                raise CellError(spec, attempts[spec])
            os.remove(markers[spec])
            self.stats.retries += 1
        suspect_set = set(suspects)
        for spec, slot in victims:
            submit(spec, slot, count_attempt=spec in suspect_set)

    def _interrupt(self, outstanding: Dict[Any, CellSpec]) -> None:
        """Ctrl-C: cancel queued cells, kill running workers, bail."""
        for future in outstanding:
            future.cancel()
        outstanding.clear()
        self._discard_executor(terminate=True)
