"""Relevant-source digests via the simlint import graph.

The cell cache must invalidate when *engine code* changes but survive
edits to unrelated subsystems (``repro.lint``, ``repro.bench``, docs).
"Relevant" is defined statically: the transitive closure of module
imports reachable from the cell function's module, computed from the
same parsed-module model simlint uses (:mod:`repro.lint`).  The digest
is a SHA-256 over the sorted ``(module, file-hash)`` pairs of that
closure, so any byte change in any reachable source file changes every
dependent cell's content address.
"""

from __future__ import annotations

import ast
import hashlib
import os
from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.core import iter_python_files, load_module


def module_table(src_root: str) -> Dict[str, str]:
    """Map dotted module name -> file path for every module under
    *src_root* (a directory containing top-level packages)."""
    table: Dict[str, str] = {}
    for path in iter_python_files([src_root]):
        rel = os.path.relpath(path, src_root).replace(os.sep, "/")
        if rel.endswith("/__init__.py"):
            dotted = rel[: -len("/__init__.py")].replace("/", ".")
        elif rel == "__init__.py":
            continue
        else:
            dotted = rel[: -len(".py")].replace("/", ".")
        table[dotted] = path
    return table


def _module_package(dotted: str, path: str) -> str:
    """The package a module's relative imports resolve against."""
    if path.endswith("__init__.py"):
        return dotted
    return dotted.rpartition(".")[0]


def _imports_of(dotted: str, path: str, known: Dict[str, str]) -> Set[str]:
    """In-tree modules *dotted* imports, resolved to table entries."""
    module = load_module(path)
    package = _module_package(dotted, path)
    deps: Set[str] = set()

    def add(target: str, names: Iterable[str] = ()) -> None:
        # ``from pkg import name`` may name a submodule or an attribute;
        # include whichever of pkg.name / pkg is a known module.
        for name in names:
            if f"{target}.{name}" in known:
                deps.add(f"{target}.{name}")
        if target in known:
            deps.add(target)

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package.split(".")
                if node.level > 1:
                    base = base[: -(node.level - 1)]
                target = ".".join(base)
                if node.module:
                    target = f"{target}.{node.module}" if target else node.module
            else:
                target = node.module or ""
            if target:
                add(target, [a.name for a in node.names])
    return deps


def import_graph(src_root: str) -> Dict[str, Set[str]]:
    """The static import graph over every module under *src_root*.

    Edges point from importer to imported module; importing a module
    also executes its ancestor packages' ``__init__``, so those are
    edges too.
    """
    known = module_table(src_root)
    graph: Dict[str, Set[str]] = {}
    for dotted in sorted(known):
        deps = _imports_of(dotted, known[dotted], known)
        for dep in list(deps):
            parts = dep.split(".")
            for i in range(1, len(parts)):
                ancestor = ".".join(parts[:i])
                if ancestor in known:
                    deps.add(ancestor)
        deps.discard(dotted)
        graph[dotted] = deps
    return graph


def closure(graph: Dict[str, Set[str]], roots: Iterable[str]) -> List[str]:
    """Modules transitively reachable from *roots* (roots included)."""
    seen: Set[str] = set()
    stack = [r for r in roots if r in graph]
    while stack:
        mod = stack.pop()
        if mod in seen:
            continue
        seen.add(mod)
        stack.extend(graph.get(mod, ()))
    return sorted(seen)


#: Lazily loaded ``REPRO_MODTABLE`` contents: abspath -> entry dict.
#: ``None`` means "not loaded yet"; ``{}`` means "no usable table".
_MODTABLE: "Dict[str, Dict[str, object]] | None" = None


def _modtable() -> "Dict[str, Dict[str, object]]":
    """The pre-hashed module table emitted by ``python -m repro.lint
    --emit-module-table`` (shared via the ``REPRO_MODTABLE`` env var),
    or an empty table when absent/unreadable -- the digest then simply
    hashes everything itself."""
    global _MODTABLE
    if _MODTABLE is None:
        _MODTABLE = {}
        path = os.environ.get("REPRO_MODTABLE")
        if path:
            try:
                import json

                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
                if isinstance(doc, dict) and doc.get("version") == 1:
                    _MODTABLE = dict(doc.get("files", {}))
            except (OSError, ValueError):
                _MODTABLE = {}
    return _MODTABLE


def _file_hash(path: str) -> str:
    entry = _modtable().get(os.path.abspath(path))
    if entry is not None:
        try:
            st = os.stat(path)
            if (
                entry.get("size") == st.st_size
                and entry.get("mtime_ns") == st.st_mtime_ns
            ):
                return str(entry["sha256"])
        except OSError:
            pass  # fall through to hashing
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


def source_digest(root_module: str, src_root: str) -> str:
    """Digest of every source file reachable from *root_module*.

    The digest string embeds nothing machine-specific: it is a SHA-256
    over sorted ``module=filehash`` lines, so two checkouts with
    identical sources agree byte-for-byte.
    """
    known = module_table(src_root)
    graph = import_graph(src_root)
    reachable = closure(graph, [root_module])
    if root_module not in known:
        raise KeyError(
            f"module {root_module!r} not found under {src_root!r}"
        )
    lines = [f"{mod}={_file_hash(known[mod])}" for mod in reachable]
    blob = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def digest_report(root_module: str, src_root: str) -> List[Tuple[str, str]]:
    """The (module, file-hash) pairs behind :func:`source_digest` --
    debugging aid for "why did my cache bust?"."""
    known = module_table(src_root)
    reachable = closure(import_graph(src_root), [root_module])
    return [(mod, _file_hash(known[mod])) for mod in reachable]
