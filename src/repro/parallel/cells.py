"""The cell model: one figure data point as a spec plus a pure function.

A *cell* is the unit of parallel experiment execution: a frozen
:class:`CellSpec` naming the figure, the experiment scale, the seeds it
draws from, and its grid coordinates -- plus a pure function (registered
with :func:`cell`) that builds a fresh seeded system and returns a
JSON-serialisable payload.  Because the function is pure and the spec is
hashable, cells can run in any order, in any process, and be cached by
content address; a figure is then just a declarative list of specs and a
deterministic merge step over ``{spec: payload}``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

#: In-process registry, keyed by ``module:qualname``.  Execution does not
#: require prior registration -- :func:`resolve` falls back to importing
#: the module named in the key, which is how spawned workers (fresh
#: interpreters) find the function behind a pickled spec.
_REGISTRY: Dict[str, Callable] = {}


def fn_key(fn: Callable) -> str:
    """The registry key of a cell function: ``module:qualname``."""
    return f"{fn.__module__}:{fn.__qualname__}"


def cell(fn: Callable) -> Callable:
    """Decorator registering *fn* as a cell function."""
    _REGISTRY[fn_key(fn)] = fn
    return fn


def resolve(key: str) -> Callable:
    """The cell function behind a registry key, importing if needed."""
    hit = _REGISTRY.get(key)
    if hit is not None:
        return hit
    module_name, _, qualname = key.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    _REGISTRY[key] = obj
    return obj


@dataclass(frozen=True)
class CellSpec:
    """One experiment data point, frozen and hashable.

    Attributes:
        figure: figure id the cell belongs to (``fig8``...).  Cells shared
            between figures (fig1b is fig12 restricted to two systems)
            carry the *owning* figure's id so the cache is shared too.
        fn: registry key of the pure cell function (``module:qualname``).
        scale: the frozen experiment :class:`~repro.harness.config.Scale`
            (any hashable dataclass works; the fabric never inspects it).
        coords: sorted ``(name, value)`` grid coordinates -- the cell's
            position in the figure (system, interarrival, client count...).
        seeds: named ``(seed_name, value)`` pairs the cell draws from,
            recorded so the spec fully describes the cell's randomness.
    """

    figure: str
    fn: str
    scale: Any
    coords: Tuple[Tuple[str, Any], ...]
    seeds: Tuple[Tuple[str, int], ...] = ()

    @property
    def coord(self) -> Dict[str, Any]:
        """The grid coordinates as a dict."""
        return dict(self.coords)

    def slug(self) -> str:
        """A deterministic, filesystem-safe identifier for the cell."""
        parts = [self.figure] + [f"{k}={v}" for k, v in self.coords]
        raw = "-".join(str(p) for p in parts)
        return re.sub(r"[^A-Za-z0-9_.=-]+", "~", raw)

    def describe(self) -> str:
        coords = ", ".join(f"{k}={v!r}" for k, v in self.coords)
        return f"{self.figure} cell [{coords}] via {self.fn} @ {_scale_name(self.scale)}"


def _scale_name(scale: Any) -> str:
    return getattr(scale, "name", repr(scale))


def coords(**kwargs: Any) -> Tuple[Tuple[str, Any], ...]:
    """Grid coordinates in canonical (sorted-by-name) order."""
    return tuple(sorted(kwargs.items()))


def fingerprint(spec: CellSpec) -> Dict[str, Any]:
    """A JSON-ready canonical description of *spec* (cache keying)."""
    scale = spec.scale
    if dataclasses.is_dataclass(scale) and not isinstance(scale, type):
        scale = dataclasses.asdict(scale)
    return {
        "figure": spec.figure,
        "fn": spec.fn,
        "scale": scale,
        "coords": [[k, v] for k, v in spec.coords],
        "seeds": [[k, v] for k, v in spec.seeds],
    }


def spec_hash(spec: CellSpec, source_digest: str) -> str:
    """The content address of a cell: spec fingerprint + source digest."""
    doc = {"spec": fingerprint(spec), "sources": source_digest}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CellResult:
    """What one executed (or cache-served) cell produced."""

    spec: CellSpec
    payload: Any
    #: One event list per simulated host the cell built (only when the
    #: cell ran with tracing enabled).
    traces: Optional[List[List[dict]]] = None
    cached: bool = False
    attempts: int = 1


def execute_cell(spec: CellSpec, trace: bool = False) -> CellResult:
    """Run one cell in this process; the worker-side entry point.

    With ``trace=True`` the harness's tracing registry is enabled around
    the cell so every host the cell builds records packet-lifecycle
    events; the collected per-host event lists ride back on the result.
    """
    fn = resolve(spec.fn)
    if not trace:
        return CellResult(spec, fn(spec))
    # Deliberate late import: the fabric itself is harness-agnostic, but
    # tracing hooks into the harness's system builders.
    from repro.harness.config import (
        collected_tracers,
        disable_tracing,
        enable_tracing,
    )

    enable_tracing()
    try:
        payload = fn(spec)
        traces = [list(t.events) for t in collected_tracers()]
    finally:
        disable_tracing()
    return CellResult(spec, payload, traces=traces)


def run_cells_serial(
    specs: Iterable[CellSpec], trace: bool = False
) -> Dict[CellSpec, Any]:
    """Execute cells in-process, in order; returns ``{spec: payload}``.

    The zero-dependency path the public ``figN_*`` wrappers use; the
    parallel path must produce byte-identical merges.
    """
    return {spec: execute_cell(spec, trace=trace).payload for spec in specs}


def merge_payloads(
    specs: Iterable[CellSpec], results: Mapping[CellSpec, Any]
) -> List[Tuple[CellSpec, Any]]:
    """Payloads re-ordered by the declarative spec list (merge input)."""
    return [(spec, results[spec]) for spec in specs]
