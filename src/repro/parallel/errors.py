"""Typed errors of the parallel experiment fabric.

Follows the :mod:`repro.faults` error conventions: every failure the
fabric can surface is a typed exception carrying the structured facts a
caller needs (here: *which cell*, after how many attempts, caused by
what), so the harness can report a failing grid point by name instead of
a bare traceback from an anonymous worker.
"""

from __future__ import annotations

from typing import Optional

from repro.parallel.cells import CellSpec


class CellError(RuntimeError):
    """A cell failed permanently (its retry budget is exhausted).

    Attributes:
        spec: the failing cell's :class:`~repro.parallel.cells.CellSpec`.
        attempts: how many times the cell was attempted.
        cause: the underlying exception of the final attempt, if any
            (``None`` when the worker process died without raising, e.g.
            a crash that broke the pool).
    """

    def __init__(
        self,
        spec: CellSpec,
        attempts: int,
        cause: Optional[BaseException] = None,
    ):
        self.spec = spec
        self.attempts = attempts
        self.cause = cause
        why = f": {type(cause).__name__}: {cause}" if cause else " (worker died)"
        super().__init__(
            f"cell failed after {attempts} attempt(s) -- "
            f"{spec.describe()}{why}"
        )
