"""Deterministic multi-process experiment fabric.

The DES kernel is inherently serial per virtual clock, but the figure
grids the harness regenerates are embarrassingly parallel: every data
point builds a fresh seeded system by design (DESIGN.md section 11).
This package turns one such data point into a *cell* -- a frozen,
hashable :class:`~repro.parallel.cells.CellSpec` plus a pure function --
and executes any bag of cells

* serially in-process (``jobs=1``), or
* on a spawn-context process pool (:class:`~repro.parallel.pool.PoolRunner`),

with results merged by grid coordinate so the output is byte-identical
either way, and an optional content-addressed on-disk cache
(:class:`~repro.parallel.cache.CellCache`) keyed by the cell spec plus a
digest of the source files the cell function transitively imports (the
simlint import graph), so reruns after unrelated edits are near-instant.
"""

from repro.parallel.cells import (
    CellResult,
    CellSpec,
    cell,
    execute_cell,
    fingerprint,
    fn_key,
    resolve,
    run_cells_serial,
)
from repro.parallel.cache import CellCache
from repro.parallel.digest import import_graph, source_digest
from repro.parallel.errors import CellError
from repro.parallel.pool import PoolRunner, PoolStats, steal_choice

__all__ = [
    "CellCache",
    "CellError",
    "CellResult",
    "CellSpec",
    "PoolRunner",
    "PoolStats",
    "cell",
    "execute_cell",
    "fingerprint",
    "fn_key",
    "import_graph",
    "resolve",
    "run_cells_serial",
    "source_digest",
    "steal_choice",
]
