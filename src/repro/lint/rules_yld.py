"""YLD -- cooperative-scheduling discipline.

Sim processes are plain generators the kernel drives with ``send``/
``throw``; every blocking primitive *returns an event or a generator*
that only does anything once yielded.  Python will happily evaluate
``sim.timeout(5)`` or ``channel.put(rows)`` as a bare statement and
throw the result away -- the process just never blocks (or the item is
never sent), and nothing fails until a trace diverges much later.

* **YLD001** dropped yielding call: an expression statement calls a
  known yielding primitive (``timeout``, ``acquire``, ``request``,
  ``get``/``put``, ``wait``, ``charge``...) or a function known to be a
  generator, and neither ``yield``\\ s nor ``yield from``\\ s the result.
  This is the classic silently-dropped-generator bug.
* **YLD002** generator unreachable from the kernel's spawn surface: a
  *private* (``_name``) or nested generator function that is never
  referenced anywhere in the analyzed tree -- nothing spawns it, drives
  it with ``yield from``, or exports it -- so its ``yield`` statements
  can never execute.  Public generators are the spawn surface itself
  (tests and client code reference them) and are exempt.

Matching a bare ``obj.method()`` against generator *names* is
necessarily approximate: the attribute form only counts when the name
is unambiguous -- defined somewhere as a generator, nowhere as a plain
function, and not a common container/file method (``update``,
``write``, ...) that collides with dicts and file handles.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Set

from repro.lint.findings import Finding, make_finding
from repro.lint.scopes import ModuleInfo, attr_of_call, call_name

RULES: Dict[str, str] = {
    "YLD001": "Yielding primitive called but its event/generator is "
              "dropped; 'yield'/'yield from' it.",
    "YLD002": "Generator function unreachable from the kernel's spawn "
              "surface (never spawned, yielded from, or exported).",
}

#: Method names whose call result is an Event (or a generator) that a
#: sim process must yield; a bare expression statement discards it.
YIELDING_METHODS = frozenset({
    "timeout", "acquire", "request", "wait", "get", "put",
    "charge", "sleep", "any_of", "all_of",
})

#: Method names shared with dicts, sets, lists, and file handles.  A
#: generator named ``write`` (Disk.write) would otherwise make every
#: ``fh.write(...)`` statement look like a dropped generator; attribute
#: matching skips these names entirely (plain-name calls still match).
_COMMON_METHODS = frozenset({
    "append", "add", "clear", "close", "extend", "flush", "insert",
    "open", "pop", "read", "readline", "remove", "reverse", "run",
    "seek", "sort", "update", "write", "writelines",
})


def check(module: ModuleInfo) -> Iterator[Finding]:
    """YLD001 within one module, against the module's own generators.

    The project pass re-runs the same scan with the union of every
    module's generator names; running here too keeps single-file lints
    (fixtures, editors) useful on their own.
    """
    gens, nongens = _function_names([module])
    yield from _dropped_calls(module, gens, nongens)


def check_project(modules: List[ModuleInfo]) -> Iterator[Finding]:
    all_gens, all_nongens = _function_names(modules)

    # YLD001 against the project-wide generator set, minus what the
    # per-module pass already reported (avoid duplicate findings).
    for module in modules:
        gens, nongens = _function_names([module])
        local = set(_dropped_calls(module, gens, nongens))
        for finding in _dropped_calls(module, all_gens, all_nongens):
            if finding not in local:
                yield finding

    # YLD002: a private generator nobody references can never reach the
    # kernel.  Public generators are API surface -- tests and client
    # code outside the linted tree legitimately reference them.
    referenced: Set[str] = set()
    for module in modules:
        referenced |= module.referenced_names
    for module in modules:
        for func in module.functions:
            if not func.is_generator or not _internal(func):
                continue
            if func.name not in referenced:
                yield make_finding(
                    module, func.node, "YLD002",
                    f"generator {func.qualname!r} is never spawned, "
                    f"yielded from, or referenced anywhere; its yield "
                    f"statements are unreachable from the kernel",
                )


def _internal(func) -> bool:
    """Private (``_name`` but not dunder) or nested generators only."""
    name = func.name
    if name.startswith("__") and name.endswith("__"):
        return False
    return name.startswith("_") or ".<locals>." in func.qualname


def _function_names(modules: List[ModuleInfo]) -> "tuple[Set[str], Set[str]]":
    gens: Set[str] = set()
    nongens: Set[str] = set()
    for module in modules:
        for func in module.functions:
            (gens if func.is_generator else nongens).add(func.name)
    return gens, nongens


# ---------------------------------------------------------------------------
# YLD001
# ---------------------------------------------------------------------------
def _dropped_calls(
    module: ModuleInfo,
    generator_names: Iterable[str],
    nongenerator_names: Iterable[str],
) -> List[Finding]:
    generator_names = set(generator_names)
    # A name defined both ways somewhere in the tree is ambiguous at an
    # untyped call site; stay silent rather than guess.
    unambiguous = generator_names - set(nongenerator_names)
    out: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Expr):
            continue
        call = node.value
        if not isinstance(call, ast.Call):
            # `yield X.acquire()` is Expr(Yield(Call)): correctly driven.
            continue
        attr = attr_of_call(call)
        plain = call_name(call.func)
        if attr in YIELDING_METHODS:
            out.append(
                make_finding(
                    module, node, "YLD001",
                    f"result of {_describe(call)}() is discarded; the "
                    f"wait never happens -- yield it (or 'yield from' "
                    f"it) so the kernel can resume the process",
                )
            )
        elif (
            plain is not None
            and "." not in plain
            and plain in unambiguous
        ) or (
            attr is not None
            and attr in unambiguous
            and attr not in _COMMON_METHODS
        ):
            out.append(
                make_finding(
                    module, node, "YLD001",
                    f"{_describe(call)}() is a generator function; "
                    f"calling it as a bare statement drops the "
                    f"generator unstarted -- use 'yield from' (or "
                    f"sim.spawn)",
                )
            )
    return out


def _describe(call: ast.Call) -> str:
    name = call_name(call.func)
    if name is not None:
        return name
    attr = attr_of_call(call)
    return f"...{attr}" if attr is not None else "<call>"
