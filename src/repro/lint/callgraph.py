"""Project-wide call graph over the parsed-module symbol tables.

Static call resolution in Python is necessarily partial; the graph keeps
the honest distinction the passes rely on:

* **precise** edges -- resolutions that identify the target function:
  plain-name calls to locals/nested defs/module functions/imported
  functions, ``self.x()`` / ``cls.x()`` through the textual class
  hierarchy, ``Class()`` to ``Class.__init__``, and ``mod.func()``
  through the import table.  The resource-escape and lock-order passes
  follow only these (a wrong edge there would fabricate findings).
* **fuzzy** edges -- ``obj.method()`` on an untyped receiver, resolved
  to *every* in-tree function of that name (capped; very common names
  are dropped).  The cell-purity pass follows these too: purity is a
  universal claim, so over-approximating the callee set errs on the
  sound side.

Known unsoundness, by construction: dynamic dispatch through
``getattr``/``globals()``, callables passed as values, monkey-patching,
and calls into site-packages are invisible.  DESIGN section 14 records
these limits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.scopes import FunctionInfo, ModuleInfo, call_name

#: An attribute call resolving to more in-tree defs than this is treated
#: as unresolvable noise rather than a 100-target fan-out.
FUZZY_CAP = 24

#: Attribute names that overwhelmingly bind to builtin / stdlib objects
#: (dict, list, set, str, file, Path).  A fuzzy edge from ``d.get(k)``
#: to every in-tree ``get`` would wire the whole tree together through
#: collection-protocol noise, so these never produce fuzzy edges (an
#: in-tree target is still reached when the receiver resolves
#: precisely: plain name, ``self.``, or an imported module).
FUZZY_STOPLIST = frozenset({
    "add", "append", "clear", "close", "copy", "count", "discard",
    "encode", "decode", "extend", "flush", "format", "get", "index",
    "insert", "items", "join", "keys", "open", "pop", "popitem", "put",
    "read", "readline", "readlines", "remove", "resolve", "reverse",
    "run", "seek", "setdefault", "sort", "split", "strip", "update",
    "values", "write", "writelines",
})

#: Function key: "<module rel path>::<qualname>".
Key = str


def func_key(module: ModuleInfo, info: FunctionInfo) -> Key:
    return f"{module.rel}::{info.qualname}"


def dotted_of(rel: str) -> str:
    """Dotted module path of a source file's repo-relative path."""
    path = rel.replace("\\", "/")
    for prefix in ("src/", "./"):
        if path.startswith(prefix):
            path = path[len(prefix):]
    if path.endswith("/__init__.py"):
        path = path[: -len("/__init__.py")]
    elif path.endswith(".py"):
        path = path[: -len(".py")]
    return path.replace("/", ".")


@dataclass
class ClassInfo:
    name: str
    module: ModuleInfo
    #: Base-class names resolved through the import table.
    bases: List[str]
    #: method name -> FunctionInfo (own methods only).
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved call: the AST node plus its targets."""

    call: ast.Call
    precise: Tuple[Key, ...]
    fuzzy: Tuple[Key, ...]


class CallGraph:
    """The project call graph; build once, query per pass."""

    def __init__(self, modules: List[ModuleInfo]):
        self.modules = modules
        self.functions: Dict[Key, Tuple[ModuleInfo, FunctionInfo]] = {}
        self.by_simple_name: Dict[str, List[Key]] = {}
        self.module_by_dotted: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, List[ClassInfo]] = {}
        self._call_sites: Dict[Key, List[CallSite]] = {}

        for module in modules:
            self.module_by_dotted[dotted_of(module.rel)] = module
            for info in module.functions:
                key = func_key(module, info)
                self.functions[key] = (module, info)
                self.by_simple_name.setdefault(info.name, []).append(key)
            for cls in self._collect_classes(module):
                self.classes.setdefault(cls.name, []).append(cls)

        for module in modules:
            for info in module.functions:
                key = func_key(module, info)
                self._call_sites[key] = self._resolve_sites(module, info)

    # -- construction ----------------------------------------------------
    def _collect_classes(self, module: ModuleInfo) -> List[ClassInfo]:
        out: List[ClassInfo] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases: List[str] = []
            for base in node.bases:
                name = module.resolve(call_name(base))
                if name:
                    bases.append(name.rpartition(".")[2])
            cls = ClassInfo(name=node.name, module=module, bases=bases)
            for info in module.functions:
                if info.class_name == node.name and "." not in (
                    info.qualname.replace(f"{node.name}.", "", 1)
                ):
                    cls.methods.setdefault(info.name, info)
            out.append(cls)
        return out

    def _resolve_sites(
        self, module: ModuleInfo, info: FunctionInfo
    ) -> List[CallSite]:
        from repro.lint.scopes import iter_scope

        sites: List[CallSite] = []
        for node in iter_scope(info.node):
            if isinstance(node, ast.Call):
                precise, fuzzy = self.resolve_call(module, info, node)
                if precise or fuzzy:
                    sites.append(CallSite(node, tuple(precise), tuple(fuzzy)))
        return sites

    # -- resolution ------------------------------------------------------
    def resolve_call(
        self, module: ModuleInfo, info: Optional[FunctionInfo],
        call: ast.Call,
    ) -> Tuple[List[Key], List[Key]]:
        """(precise targets, fuzzy targets) of one call node."""
        func = call.func
        # Plain name: local def chain, module function, import, class.
        if isinstance(func, ast.Name):
            target = self._resolve_plain(module, info, func.id)
            return (([target], []) if target else ([], []))
        if not isinstance(func, ast.Attribute):
            return [], []
        attr = func.attr
        base = call_name(func.value)
        # self.method() / cls.method() via the textual hierarchy.
        if base in ("self", "cls") and info is not None and info.class_name:
            target = self._resolve_method(module, info.class_name, attr)
            if target:
                return [target], []
            return [], self._fuzzy(attr)
        # mod.func() / pkg.mod.func() through the import table.
        if base is not None:
            resolved = module.resolve(f"{base}.{attr}")
            if resolved:
                target = self._resolve_dotted(resolved)
                if target:
                    return [target], []
        return [], self._fuzzy(attr)

    def _resolve_plain(
        self, module: ModuleInfo, info: Optional[FunctionInfo], name: str
    ) -> Optional[Key]:
        # Nested defs visible from the enclosing function, innermost out.
        if info is not None:
            prefix = info.qualname
            while True:
                cand = f"{module.rel}::{prefix}.<locals>.{name}"
                if cand in self.functions:
                    return cand
                if ".<locals>." not in prefix:
                    break
                prefix = prefix.rsplit(".<locals>.", 1)[0]
        # Module-level function.
        cand = f"{module.rel}::{name}"
        if cand in self.functions:
            return cand
        # Class instantiation -> __init__.
        for cls in self.classes.get(name, ()):
            if cls.module is module:
                init = cls.methods.get("__init__")
                if init is not None:
                    return func_key(cls.module, init)
        # Imported function or class.
        resolved = module.resolve(name)
        if resolved and resolved != name:
            return self._resolve_dotted(resolved)
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[Key]:
        """``pkg.mod.func`` / ``pkg.mod.Class`` to an in-tree function."""
        mod_path, _, leaf = dotted.rpartition(".")
        target_mod = self.module_by_dotted.get(mod_path)
        if target_mod is None:
            return None
        cand = f"{target_mod.rel}::{leaf}"
        if cand in self.functions:
            return cand
        for cls in self.classes.get(leaf, ()):
            if cls.module is target_mod:
                init = cls.methods.get("__init__")
                if init is not None:
                    return func_key(cls.module, init)
        return None

    def _resolve_method(
        self, module: ModuleInfo, class_name: str, attr: str
    ) -> Optional[Key]:
        """Method lookup through the textual base-class chain (in-tree
        classes matched by name; name collisions pick the same-module
        definition first)."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            cname = queue.pop(0)
            if cname in seen:
                continue
            seen.add(cname)
            candidates = self.classes.get(cname, ())
            ordered = sorted(
                candidates, key=lambda c: 0 if c.module is module else 1
            )
            for cls in ordered:
                info = cls.methods.get(attr)
                if info is not None:
                    return func_key(cls.module, info)
            for cls in ordered:
                queue.extend(cls.bases)
        return None

    def _fuzzy(self, attr: str) -> List[Key]:
        if attr.startswith("__") and attr.endswith("__"):
            return []
        if attr in FUZZY_STOPLIST:
            return []
        keys = self.by_simple_name.get(attr, [])
        if not keys or len(keys) > FUZZY_CAP:
            return []
        return list(keys)

    # -- queries ---------------------------------------------------------
    def call_sites(self, key: Key) -> List[CallSite]:
        return self._call_sites.get(key, [])

    def callees(self, key: Key, fuzzy: bool = False) -> List[Key]:
        out: List[Key] = []
        for site in self.call_sites(key):
            out.extend(site.precise)
            if fuzzy:
                out.extend(site.fuzzy)
        return sorted(dict.fromkeys(out))

    def function(self, key: Key) -> Tuple[ModuleInfo, FunctionInfo]:
        return self.functions[key]
