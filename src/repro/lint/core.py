"""Findings, the rule catalogue, and the lint driver.

The driver parses every ``.py`` file under the given paths into a
:class:`~repro.lint.scopes.ModuleInfo`, runs the per-module rule
families over each module, runs the project-wide checks (which need
every module's symbol table at once -- the interprocedural IPR passes
build their call graph here), drops findings suppressed by a
``# simlint: disable=RULE`` comment on the flagged line, and returns
the rest sorted by location.

Rule modules contribute three things: a ``RULES`` dict (rule id ->
one-line description, merged into :func:`rule_catalogue`), an optional
``EXPLAIN`` dict of extended ``--explain`` text, and ``check(module)``
/ ``check_project(modules)`` generators of :class:`Finding`.

Parsing parallelises with ``jobs > 1`` (a spawn-safe process pool,
clamped to ``cpu_count`` like the harness PoolRunner); analysis stays
in-process -- the project passes need every module anyway, and parsing
dominates cold-start time.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint import rules_det, rules_ipr, rules_res, rules_trc, rules_yld
from repro.lint.findings import Finding, make_finding  # noqa: F401 (re-export)
from repro.lint.scopes import ModuleInfo

#: Parse failures are findings too, so a syntactically broken file can
#: never make the tree "lint clean" by being unanalysable.
PARSE_RULE = "E001"

RULES: Dict[str, str] = {
    PARSE_RULE: "File could not be parsed as Python source.",
}
EXPLAIN: Dict[str, str] = {}
for _mod in (rules_det, rules_yld, rules_res, rules_trc, rules_ipr):
    RULES.update(_mod.RULES)
    EXPLAIN.update(getattr(_mod, "EXPLAIN", {}))


def rule_catalogue() -> List[Tuple[str, str]]:
    """Every (rule id, description), sorted by id."""
    return sorted(RULES.items())


# ---------------------------------------------------------------------------
# File collection and parsing
# ---------------------------------------------------------------------------
def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Every ``.py`` file under *paths*, sorted for determinism."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return sorted(dict.fromkeys(out))


def _relpath(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # different drive (windows)
        rel = path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def load_module(path: str, root: str = ".") -> ModuleInfo:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return ModuleInfo(path, _relpath(path, root), source)


def _parse_one(args: Tuple[str, str]):
    """Pool worker: parse one file; returns the module or the error
    facts (SyntaxError itself does not pickle with position info)."""
    path, root = args
    try:
        return ("ok", load_module(path, root))
    except SyntaxError as exc:
        return ("err", (path, exc.lineno or 1, (exc.offset or 1) - 1,
                        str(exc.msg)))


def collect_modules(
    paths: Iterable[str], root: str = ".", jobs: int = 1
) -> Tuple[List[ModuleInfo], List[Finding]]:
    """Parse every Python file under *paths*; returns the modules plus
    E001 findings for unparsable files.  ``jobs`` is clamped to the
    machine's core count (requesting more buys nothing, same rule as
    the harness PoolRunner)."""
    files = iter_python_files(paths)
    jobs = max(1, min(jobs, os.cpu_count() or 1))
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []

    if jobs > 1 and len(files) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(
                pool.map(
                    _parse_one, [(f, root) for f in files], chunksize=8
                )
            )
    else:
        results = [_parse_one((f, root)) for f in files]

    for status, payload in results:
        if status == "ok":
            modules.append(payload)
        else:
            path, line, col, msg = payload
            findings.append(
                Finding(
                    path=_relpath(path, root),
                    line=line,
                    col=col,
                    rule=PARSE_RULE,
                    message=f"syntax error: {msg}",
                )
            )
    return modules, findings


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------
_MODULE_CHECKS = (
    rules_det.check,
    rules_yld.check,
    rules_res.check,
    rules_trc.check,
)
_PROJECT_CHECKS = (rules_yld.check_project, rules_ipr.check_project)


def lint_modules(
    modules: List[ModuleInfo], findings: Optional[List[Finding]] = None
) -> List[Finding]:
    """Run every check over already-parsed modules; returns surviving
    findings (suppressions applied), sorted by location."""
    findings = list(findings or [])
    for module in modules:
        for check in _MODULE_CHECKS:
            findings.extend(check(module))
    for check in _PROJECT_CHECKS:
        findings.extend(check(modules))

    by_rel = {m.rel: m for m in modules}
    survivors = []
    for finding in findings:
        module = by_rel.get(finding.path)
        if module is not None and module.suppressed(
            finding.line, finding.rule
        ):
            continue
        survivors.append(finding)
    return sorted(survivors, key=Finding.sort_key)


def lint_paths(
    paths: Iterable[str], root: str = ".", jobs: int = 1
) -> List[Finding]:
    """Analyze every Python file under *paths*; returns the surviving
    findings (suppressions already applied), sorted by location."""
    modules, parse_findings = collect_modules(paths, root, jobs)
    return lint_modules(modules, parse_findings)
