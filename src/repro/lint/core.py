"""Findings, the rule catalogue, and the lint driver.

The driver parses every ``.py`` file under the given paths into a
:class:`~repro.lint.scopes.ModuleInfo`, runs the four rule families
over each module, runs the project-wide checks (which need every
module's symbol table at once), drops findings suppressed by a
``# simlint: disable=RULE`` comment on the flagged line, and returns
the rest sorted by location.

Rule modules contribute two things: a ``RULES`` dict (rule id ->
docstring, merged into :func:`rule_catalogue`) and ``check(module)`` /
``check_project(modules)`` generators of :class:`Finding`.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Tuple

from repro.lint import rules_det, rules_res, rules_trc, rules_yld
from repro.lint.findings import Finding, make_finding  # noqa: F401 (re-export)
from repro.lint.scopes import ModuleInfo

#: Parse failures are findings too, so a syntactically broken file can
#: never make the tree "lint clean" by being unanalysable.
PARSE_RULE = "E001"

RULES: Dict[str, str] = {
    PARSE_RULE: "File could not be parsed as Python source.",
}
for _mod in (rules_det, rules_yld, rules_res, rules_trc):
    RULES.update(_mod.RULES)


def rule_catalogue() -> List[Tuple[str, str]]:
    """Every (rule id, description), sorted by id."""
    return sorted(RULES.items())


# ---------------------------------------------------------------------------
# File collection and parsing
# ---------------------------------------------------------------------------
def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Every ``.py`` file under *paths*, sorted for determinism."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return sorted(dict.fromkeys(out))


def _relpath(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # different drive (windows)
        rel = path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def load_module(path: str, root: str = ".") -> ModuleInfo:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return ModuleInfo(path, _relpath(path, root), source)


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------
_MODULE_CHECKS = (
    rules_det.check,
    rules_yld.check,
    rules_res.check,
    rules_trc.check,
)
_PROJECT_CHECKS = (rules_yld.check_project,)


def lint_paths(paths: Iterable[str], root: str = ".") -> List[Finding]:
    """Analyze every Python file under *paths*; returns the surviving
    findings (suppressions already applied), sorted by location."""
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            module = load_module(path, root)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=_relpath(path, root),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule=PARSE_RULE,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        modules.append(module)

    for module in modules:
        for check in _MODULE_CHECKS:
            findings.extend(check(module))
    for check in _PROJECT_CHECKS:
        findings.extend(check(modules))

    by_rel = {m.rel: m for m in modules}
    survivors = []
    for finding in findings:
        module = by_rel.get(finding.path)
        if module is not None and module.suppressed(
            finding.line, finding.rule
        ):
            continue
        survivors.append(finding)
    return sorted(survivors, key=Finding.sort_key)
