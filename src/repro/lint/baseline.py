"""Baseline files: grandfathering known findings without hiding new ones.

A baseline is a committed JSON file listing findings that are accepted
for now.  ``python -m repro.lint --baseline lint_baseline.json`` drops
any finding matching a baseline entry and fails only on *new* ones, so
the lint gate can be turned on before a tree is fully clean -- and the
entries burn down as files get fixed (stale entries are reported).

**v2** entries fingerprint on ``(path, rule, symbol)`` -- the qualified
name of the enclosing function -- so neither unrelated edits above a
grandfathered finding *nor* rewording of the flagged line churn the
baseline; duplicate keys carry a count.  **v1** entries keyed on the
stripped source line are still read: a finding first tries the v2
budget, then the v1 budget, so an old baseline keeps working and
``--write-baseline`` migrates it to v2 wholesale.  An empty baseline
(``{"findings": []}``) is the steady state this tree maintains.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.lint.findings import Finding

_VERSION = 2

Key = Tuple[str, str, str]


@dataclass
class Baseline:
    """Grandfathered-finding budgets, split by fingerprint scheme."""

    #: (path, rule, symbol) -> count   (v2 entries)
    by_symbol: Counter = field(default_factory=Counter)
    #: (path, rule, snippet) -> count  (legacy v1 entries)
    by_snippet: Counter = field(default_factory=Counter)

    def __len__(self) -> int:
        return sum(self.by_symbol.values()) + sum(self.by_snippet.values())


def load_baseline(path: str) -> Baseline:
    """The baseline as budgets of finding fingerprints.

    v1 files (or stray v1-style entries in a v2 file) land in the
    snippet budget; everything with a ``symbol`` field is v2.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "findings" not in doc:
        raise ValueError(
            f"{path}: not a simlint baseline (expected a 'findings' list)"
        )
    baseline = Baseline()
    for entry in doc["findings"]:
        count = entry.get("count", 1)
        if "symbol" in entry:
            baseline.by_symbol[
                (entry["path"], entry["rule"], entry["symbol"])
            ] += count
        else:
            baseline.by_snippet[
                (entry["path"], entry["rule"], entry.get("snippet", ""))
            ] += count
    return baseline


def write_baseline(findings: List[Finding], path: str) -> None:
    """Write the given findings as a fresh v2 baseline file."""
    keys = Counter(f.baseline_key() for f in findings)
    doc = {
        "version": _VERSION,
        "findings": [
            {"path": p, "rule": r, "symbol": s, "count": c}
            for (p, r, s), c in sorted(keys.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def apply_baseline(
    findings: List[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding], List[Key]]:
    """Split findings into (new, grandfathered) and list stale entries.

    Each baseline entry absorbs at most ``count`` matching findings --
    v2 (symbol) entries first, then legacy v1 (snippet) entries.
    Entries matching nothing are *stale*: the code they covered was
    fixed, so the baseline should be regenerated to burn them down.
    """
    v2_budget: Counter = Counter(baseline.by_symbol)
    v1_budget: Counter = Counter(baseline.by_snippet)
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        v2_key = finding.baseline_key()
        v1_key = finding.baseline_key_v1()
        if v2_budget.get(v2_key, 0) > 0:
            v2_budget[v2_key] -= 1
            old.append(finding)
        elif v1_budget.get(v1_key, 0) > 0:
            v1_budget[v1_key] -= 1
            old.append(finding)
        else:
            new.append(finding)
    stale = sorted(
        key for budget in (v2_budget, v1_budget)
        for key, count in budget.items() if count > 0
    )
    return new, old, stale
