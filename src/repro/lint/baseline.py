"""Baseline files: grandfathering known findings without hiding new ones.

A baseline is a committed JSON file listing findings that are accepted
for now.  ``python -m repro.lint --baseline lint_baseline.json`` drops
any finding matching a baseline entry and fails only on *new* ones, so
the lint gate can be turned on before a tree is fully clean -- and the
entries burn down as files get fixed (stale entries are reported).

Entries key on ``(path, rule, stripped source line)`` rather than line
numbers, so unrelated edits that shift code around do not invalidate
the baseline; duplicate keys carry a count.  Regenerate with
``--write-baseline`` after deliberate changes.  An empty baseline
(``{"findings": []}``) is the steady state this tree maintains.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

_VERSION = 1

Key = Tuple[str, str, str]


def load_baseline(path: str) -> Counter:
    """The baseline as a multiset of finding keys."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "findings" not in doc:
        raise ValueError(
            f"{path}: not a simlint baseline (expected a 'findings' list)"
        )
    keys: Counter = Counter()
    for entry in doc["findings"]:
        keys[(entry["path"], entry["rule"], entry.get("snippet", ""))] += (
            entry.get("count", 1)
        )
    return keys


def write_baseline(findings: List[Finding], path: str) -> None:
    """Write the given findings as a fresh baseline file."""
    keys = Counter(f.baseline_key() for f in findings)
    doc = {
        "version": _VERSION,
        "findings": [
            {"path": p, "rule": r, "snippet": s, "count": c}
            for (p, r, s), c in sorted(keys.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def apply_baseline(
    findings: List[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding], List[Key]]:
    """Split findings into (new, grandfathered) and list stale entries.

    Each baseline entry absorbs at most ``count`` matching findings;
    entries matching nothing are *stale* -- the code they covered was
    fixed, so the baseline should be regenerated to burn them down.
    """
    budget: Counter = Counter(baseline)
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            old.append(finding)
        else:
            new.append(finding)
    stale = sorted(key for key, count in budget.items() if count > 0)
    return new, old, stale
