"""The :class:`Finding` record shared by the driver and the rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.lint.scopes import ModuleInfo


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Stripped source text of the flagged line; baselines key on it so
    #: unrelated edits shifting line numbers do not invalidate entries.
    snippet: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        return (self.path, self.rule, self.snippet)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def make_finding(
    module: ModuleInfo, node, rule: str, message: str
) -> Finding:
    """A finding anchored at an AST node (the rule modules' helper)."""
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return Finding(
        path=module.rel,
        line=line,
        col=col,
        rule=rule,
        message=message,
        snippet=module.snippet(line),
    )
