"""The :class:`Finding` record shared by the driver and the rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.lint.scopes import ModuleInfo


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Stripped source text of the flagged line (v1 baselines keyed on
    #: it; kept for migration and human context in reports).
    snippet: str = ""
    #: Qualified name of the enclosing function, "" at module level.
    #: v2 baselines key on it: a symbol survives edits that move it.
    symbol: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """The v2 fingerprint: rule + normalized path + symbol."""
        return (self.path, self.rule, self.symbol)

    def baseline_key_v1(self) -> Tuple[str, str, str]:
        return (self.path, self.rule, self.snippet)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
            "symbol": self.symbol,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def make_finding(
    module: ModuleInfo, node, rule: str, message: str
) -> Finding:
    """A finding anchored at an AST node (the rule modules' helper)."""
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    info = module.enclosing_function(node)
    if info is None and hasattr(node, "name"):
        # The node may itself be a def (purity findings anchor there).
        for own in module.functions:
            if own.node is node:
                info = own
                break
    return Finding(
        path=module.rel,
        line=line,
        col=col,
        rule=rule,
        message=message,
        snippet=module.snippet(line),
        symbol=info.qualname if info is not None else "",
    )
