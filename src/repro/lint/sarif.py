"""SARIF 2.1.0 export, so findings annotate PR diffs in code review.

One run, one tool (``simlint``), one result per *new* finding (the
baseline has already absorbed grandfathered ones -- SARIF consumers do
their own de-duplication via ``partialFingerprints``, which we seed
with the same ``rule + path + symbol`` key the v2 baseline uses).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lint.findings import Finding

SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"


def sarif_doc(
    findings: List[Finding],
    catalogue: List[Tuple[str, str]],
) -> Dict[str, object]:
    """The complete SARIF document for one lint run."""
    rule_index = {rule: i for i, (rule, _doc) in enumerate(catalogue)}
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": doc},
            "defaultConfiguration": {"level": "error"},
        }
        for rule, doc in catalogue
    ]
    results = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "simlintFingerprint/v2": "::".join(finding.baseline_key()),
            },
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
