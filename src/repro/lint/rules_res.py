"""RES -- resource acquire/release pairing on all exit paths.

A sim process can be interrupted (query abort, injected crash, client
disconnect) at *any* yield point.  A lock acquire, resource request, or
buffer pin that is not released in a ``finally:`` (or by a context
manager) leaks the moment an interrupt lands between acquire and
release -- exactly the interrupt-unsafe patterns PR 2 fixed by hand.
These rules keep them from regressing:

* **RES001** unpaired / unprotected acquire: a ``.acquire(...)`` or
  ``.request(...)`` whose matching ``.release...(...)`` is missing from
  the function, or present but not inside the ``finally:`` of a ``try``
  that covers the acquire (either the acquire's enclosing ``try`` or
  one that follows it in the same block).
* **RES002** unpaired / unprotected pin: the same discipline for
  ``pin=True`` page fetches and ``.pin(...)`` calls, which must be
  matched by ``.unpin...(...)`` in a covering ``finally:``.

The rules only fire at *call sites*: the primitives' own
implementations (``Semaphore.acquire``, ``BufferPool.get_page``) define
these methods but do not call them.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.lint.findings import Finding, make_finding
from repro.lint.scopes import ModuleInfo, attr_of_call, iter_scope

RULES: Dict[str, str] = {
    "RES001": "Lock/resource acquire without a release on all exits "
              "(require try/finally or a context manager).",
    "RES002": "Buffer pin without an unpin on all exits "
              "(require try/finally or a context manager).",
}

_ACQUIRE_ATTRS = frozenset({"acquire", "request"})
_RELEASE_ATTRS = frozenset({"release", "release_if_held", "release_all"})
_PIN_ATTRS = frozenset({"pin"})
_UNPIN_ATTRS = frozenset({"unpin", "unpin_all", "release_page"})


def check(module: ModuleInfo) -> Iterator[Finding]:
    for func in module.functions:
        yield from _check_function(module, func.node, func.name)


def _check_function(
    module: ModuleInfo, func: ast.AST, func_name: str
) -> Iterator[Finding]:
    acquires: List[Tuple[ast.Call, str, FrozenSet[str], str]] = []
    release_attrs_present = set()
    for node in iter_scope(func):
        if not isinstance(node, ast.Call):
            continue
        attr = attr_of_call(node)
        if attr in _RELEASE_ATTRS or attr in _UNPIN_ATTRS:
            release_attrs_present.add(attr)
            continue
        if attr in _ACQUIRE_ATTRS and attr != func_name:
            acquires.append((node, "RES001", _RELEASE_ATTRS, attr))
        elif attr in _PIN_ATTRS and attr != func_name:
            acquires.append((node, "RES002", _UNPIN_ATTRS, attr))
        elif _has_literal_pin(node) and func_name not in (
            "get_page", "read_page", "read_table_page"
        ):
            acquires.append((node, "RES002", _UNPIN_ATTRS, "pin=True"))

    for call, rule, releases, what in acquires:
        if _protected(module, call, releases):
            continue
        paired = bool(releases & release_attrs_present)
        if paired:
            message = (
                f"{what} at this call is released in this function, but "
                f"not from a 'finally:' covering the acquire -- an "
                f"interrupt between acquire and release leaks it"
            )
        else:
            message = (
                f"{what} at this call has no matching "
                f"{'/'.join(sorted(releases))} in this function and no "
                f"covering try/finally -- the resource leaks on every "
                f"exit path"
            )
        yield make_finding(module, call, rule, message)


def _has_literal_pin(call: ast.Call) -> bool:
    for kw in call.keywords:
        if (
            kw.arg == "pin"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# Protection analysis
# ---------------------------------------------------------------------------
def _protected(
    module: ModuleInfo, call: ast.Call, releases: FrozenSet[str]
) -> bool:
    """Whether *call* is covered by a releasing ``finally:`` or ``with``.

    Covered means: an ancestor ``try`` whose ``finally:`` contains a
    release call; a ``try`` with such a ``finally:`` later in the same
    statement block (the idiomatic ``yield x.acquire()`` immediately
    followed by ``try: ... finally: x.release()``); or the call is a
    ``with`` statement's context expression.
    """
    stmt = module.statement_of(call)

    # with X.acquire() / with pool.pin(...):
    for ancestor in module.ancestors(call):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if _contains(item.context_expr, call):
                    return True

    # An enclosing try whose finally releases.
    for ancestor in module.ancestors(stmt):
        if isinstance(ancestor, ast.Try) and _block_releases(
            ancestor.finalbody, releases
        ):
            return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break

    # A later sibling try whose finally releases.
    block, index = module.block_of(stmt)
    for later in block[index + 1:]:
        if isinstance(later, ast.Try) and _block_releases(
            later.finalbody, releases
        ):
            return True
    return False


def _block_releases(
    block: List[ast.stmt], releases: FrozenSet[str]
) -> bool:
    for stmt in block:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and attr_of_call(node) in releases:
                return True
    return False


def _contains(tree: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in ast.walk(tree))
