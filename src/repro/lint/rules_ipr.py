"""IPR -- interprocedural passes over the whole-program call graph.

Three pass families, all driven from :func:`analyze_project`:

* **IPR0xx resource escape** (IPR001 lock, IPR002 pin, IPR003 temp
  file): from each acquire site, a CFG reachability query asks whether
  a function exit -- normal *or* exceptional -- is reachable without
  passing a release of that resource kind.  Helpers participate through
  effect summaries: a call to a function that *transfers* a freshly
  acquired resource counts as an acquire at the call site, and a call
  to a function that *releases* the kind counts as a release.  Where
  the purely syntactic RES001/RES002 rules already fire on a line, the
  IPR twin stays quiet (one finding per defect).
* **IPR1xx lock discipline** (IPR101 acquisition-order cycle, IPR102
  blocking wait while holding a lock): a static acquisition-order graph
  over lock *class* tokens complements the runtime deadlock detector,
  which can only see schedules that actually happen.  Same-token
  multi-acquire (two row locks from one manager) is the runtime
  detector's job and is not reported statically.
* **IPR2xx cell purity** (IPR201 global mutation, IPR202 wall clock /
  global RNG / OS entropy, IPR203 non-injected host I/O): every
  ``@cell`` function must be transitively free of these effects or the
  content-addressed cell cache silently serves stale results.  Origins
  propagate over fuzzy call edges too -- purity is a universal claim,
  so over-approximating the callee set errs on the sound side -- and
  each finding names the concrete origin site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint import rules_res
from repro.lint.callgraph import CallGraph, Key, func_key
from repro.lint.cfg import CFG, build_cfg
from repro.lint.effects import (
    EffectSummary,
    LOCK,
    Origin,
    PIN,
    PURITY_KINDS,
    TEMP,
    WAIT_ATTRS,
    acquire_kind_of,
    binding_name,
    infer_effects,
    lock_token,
    release_kind_of,
    transferred_names,
)
from repro.lint.findings import Finding, make_finding
from repro.lint.scopes import (
    FunctionInfo,
    ModuleInfo,
    attr_of_call,
    call_name,
    iter_scope,
)

RULES: Dict[str, str] = {
    "IPR001": "Lock/resource acquired on some path escapes a normal or "
              "exceptional exit without a release (interprocedural).",
    "IPR002": "Buffer pin escapes a normal or exceptional exit without "
              "an unpin (interprocedural).",
    "IPR003": "Spill/temp file escapes a normal or exceptional exit "
              "without a drop or ownership transfer (interprocedural).",
    "IPR101": "Static lock acquisition-order cycle between lock classes "
              "(potential deadlock the runtime detector can only catch "
              "in schedules that happen to occur).",
    "IPR102": "Blocking cooperative wait while holding a lock -- the "
              "holder can stall indefinitely on a peer that needs the "
              "lock.",
    "IPR201": "@cell function transitively mutates module-level state, "
              "breaking cell-cache soundness.",
    "IPR202": "@cell function transitively reads wall clock, global "
              "RNG, or OS entropy -- nondeterministic cell output.",
    "IPR203": "@cell function transitively performs non-injected host "
              "I/O.",
}

#: Extended ``--explain`` entries (the short RULES text is the summary).
EXPLAIN: Dict[str, str] = {
    "IPR001": """\
A lock or resource request was acquired, and from the acquire site the
control-flow graph (including exception edges at yield points, raise,
and assert) can reach a function exit without passing any
release/release_if_held/release_all of the lock kind -- directly or via
a helper whose effect summary releases locks.

The exception model is the simulator's: interrupts (abort, injected
crash, deadline) land at *yield points*, so plain host statements
between an acquire and its try/finally do not unwind.  Acquires whose
result is returned to the caller, stored into a caller-owned container,
or handed to a release-family call transfer ownership and are charged
at the call site of the receiving function instead.

Fix: cover the acquire with try/finally (release_if_held is idempotent)
or a context manager; or suppress with `# simlint: disable=IPR001` plus
a comment explaining who releases.""",
    "IPR002": """\
A buffer pin (`.pin(...)` or a `pin=True` page fetch) can reach a
function exit -- normal or exceptional -- without an
unpin/unpin_all/release_page.  Leaked pins permanently shrink the
buffer pool's evictable set.  Same model as IPR001; see
`--explain IPR001` for the exception and transfer semantics.""",
    "IPR003": """\
A spill/temp file created with create_temp_file can reach a function
exit without drop_temp_file/drop_temp or an ownership transfer
(track_temp into a swept ExecContext, return to caller, store into a
caller-owned container).  Exception paths count: an interrupt landing
at a yield point between creation and the drop leaks the file and its
pages.  Cleanup sweeps (`for f in files: sm.drop_temp_file(f)`) are
recognised as releases of the whole kind.""",
    "IPR101": """\
The static acquisition-order graph has an edge A -> B when some
function acquires a lock of class B while statically holding one of
class A (same function, or calling a helper whose summary acquires B).
A cycle means two processes can acquire in opposite orders and
deadlock.  Lock classes are receiver chains (`BufferPool._lock`,
`StorageManager.locks`); same-class multi-acquire is left to the
runtime detector, which knows actual lock identities.""",
    "IPR102": """\
While statically holding a lock, the function performs a blocking
cooperative wait (`yield`-driven .get/.put/.wait/.drain/
.put_with_patience) whose completion depends on another process.  If
that peer needs the held lock, both stall; even when it does not, the
hold time becomes unbounded.  Intentional holds (e.g. a page latch held
across a producer put by design) should carry a per-line suppression
with a comment naming the invariant that makes it safe.""",
    "IPR201": """\
The cell cache keys on (spec fingerprint, source digest) and assumes a
cell's output is a function of its inputs.  A cell that transitively
assigns or mutates module-level state (module globals, `global`
declarations, advancing a module-level iterator, mutating an imported
module's attribute) either leaks information between cells or produces
output that depends on process history.  The finding names the origin
site; if the mutation is genuinely benign (a deterministic memo cache,
a process-unique id counter that never reaches cell output), suppress
*at the origin line* with `# simlint: disable=IPR201` and say why --
one annotation absolves every caller.""",
    "IPR202": """\
A cell transitively reads time.time/monotonic/perf_counter, the global
`random` module, or OS entropy, so two runs with the same inputs can
return different values and the cache would pin whichever happened
first.  Existing DET001/DET002/DET003 suppressions at the origin line
are honoured (same waiver, same reason).""",
    "IPR203": """\
A cell transitively opens files or touches the real filesystem outside
the injected storage fabric.  Cells must receive all I/O capability via
their spec; host I/O makes the cached value depend on machine state.
Suppress at the origin line when the I/O sink is itself
configuration-injected and cannot affect cell output.""",
}

_ESCAPE_RULE = {LOCK: "IPR001", PIN: "IPR002", TEMP: "IPR003"}
#: Syntactic twin whose firing on the same line silences the IPR rule.
_RES_TWIN = {"RES001": "IPR001", "RES002": "IPR002"}

_KIND_LABEL = {LOCK: "lock", PIN: "pin", TEMP: "temp file"}


# ---------------------------------------------------------------------------
# Project report (tests introspect this; the driver consumes .findings)
# ---------------------------------------------------------------------------
@dataclass
class CellPurity:
    """Purity verdict for one registered ``@cell`` function."""

    key: Key
    qualname: str
    module: str
    line: int
    #: rule id -> origin sites that violate it (empty == pure).
    violations: Dict[str, List[Origin]] = field(default_factory=dict)

    @property
    def pure(self) -> bool:
        return not self.violations


@dataclass
class ProjectReport:
    graph: CallGraph
    summaries: Dict[Key, EffectSummary]
    cells: List[CellPurity]
    findings: List[Finding]


def check_project(modules: List[ModuleInfo]) -> Iterator[Finding]:
    yield from analyze_project(modules).findings


def analyze_project(modules: List[ModuleInfo]) -> ProjectReport:
    graph = CallGraph(modules)
    summaries = infer_effects(graph)
    findings: List[Finding] = []

    for module in modules:
        res_lines = _res_twin_lines(module)
        for info in module.functions:
            key = func_key(module, info)
            findings.extend(
                _escape_findings(
                    graph, summaries, module, info, key, res_lines
                )
            )
            findings.extend(
                _wait_while_holding(graph, summaries, module, info, key)
            )

    findings.extend(_order_cycles(graph, summaries, modules))

    cells = _cell_purity(graph, summaries)
    for cell in cells:
        module, info = graph.function(cell.key)
        for rule in sorted(cell.violations):
            origins = cell.violations[rule]
            shown = ", ".join(
                f"{o.path}:{o.line} {o.detail} (in {o.symbol})"
                for o in origins[:2]
            )
            more = len(origins) - 2
            if more > 0:
                shown += f", +{more} more"
            findings.append(
                make_finding(
                    module, info.node, rule,
                    f"@cell {info.qualname!r} is impure: {shown}",
                )
            )

    return ProjectReport(
        graph=graph, summaries=summaries, cells=cells, findings=findings
    )


# ---------------------------------------------------------------------------
# IPR0xx: resource escape
# ---------------------------------------------------------------------------
def _res_twin_lines(module: ModuleInfo) -> Dict[str, Set[int]]:
    """Lines where a syntactic RES rule already fires, per IPR twin."""
    out: Dict[str, Set[int]] = {}
    for finding in rules_res.check(module):
        twin = _RES_TWIN.get(finding.rule)
        if twin:
            out.setdefault(twin, set()).add(finding.line)
    return out


def _escape_findings(
    graph: CallGraph,
    summaries: Dict[Key, EffectSummary],
    module: ModuleInfo,
    info: FunctionInfo,
    key: Key,
    res_lines: Dict[str, Set[int]],
) -> Iterator[Finding]:
    acquires: List[Tuple[ast.Call, str, Optional[Key]]] = []
    for node in iter_scope(info.node):
        if isinstance(node, ast.Call):
            kind = acquire_kind_of(node, info.name)
            if kind is not None:
                acquires.append((node, kind, None))
    for site in graph.call_sites(key):
        for tkey in site.precise:
            tsum = summaries.get(tkey)
            if tsum is None:
                continue
            for kind in sorted(tsum.transfers):
                acquires.append((site.call, kind, tkey))
    if not acquires:
        return

    cfg = build_cfg(info.node)
    escaped = transferred_names(info)
    release_stmts = _release_map(graph, summaries, module, info, key)

    for call, kind, via in acquires:
        rule = _ESCAPE_RULE[kind]
        line = getattr(call, "lineno", info.lineno)
        if line in res_lines.get(rule, ()):
            continue  # the syntactic twin already reports this line
        if _transferred(module, call, escaped):
            continue
        if _in_with_context(module, call):
            continue
        stmt = module.statement_of(call)
        starts: List[int] = []
        for occ in cfg.nodes_for(stmt):
            starts.extend(occ.succ)  # exception during acquire: not held

        def blocked(node, _kind=kind):
            return _releases_here(node.stmt, _kind, release_stmts)

        exits = cfg.reachable_exits(starts, blocked)
        if not exits:
            continue
        how = (
            f"acquired via {graph.function(via)[1].qualname}()"
            if via is not None else "acquired here"
        )
        paths = " and ".join(sorted(e.replace("-exit", "") for e in exits))
        yield make_finding(
            module, call, rule,
            f"{_KIND_LABEL[kind]} {how} can reach a {paths} exit of "
            f"{info.qualname!r} without a release -- cover it with "
            f"try/finally or transfer ownership",
        )


def _release_map(
    graph: CallGraph,
    summaries: Dict[Key, EffectSummary],
    module: ModuleInfo,
    info: FunctionInfo,
    key: Key,
) -> Dict[ast.stmt, Set[str]]:
    """Innermost statement -> resource kinds it releases (directly or
    through a precisely resolved helper)."""
    out: Dict[ast.stmt, Set[str]] = {}

    def add(call: ast.Call, kinds: Set[str]) -> None:
        if kinds:
            out.setdefault(module.statement_of(call), set()).update(kinds)

    for node in iter_scope(info.node):
        if isinstance(node, ast.Call):
            kind = release_kind_of(node)
            if kind is not None:
                add(node, {kind})
    for site in graph.call_sites(key):
        kinds: Set[str] = set()
        for tkey in site.precise:
            tsum = summaries.get(tkey)
            if tsum is not None:
                kinds |= tsum.releases
        add(site.call, kinds)
    return out


def _releases_here(
    stmt: Optional[ast.AST],
    kind: str,
    release_stmts: Dict[ast.stmt, Set[str]],
) -> bool:
    """The kill predicate: does this CFG node's statement release
    *kind*?  Compound statements are judged by their inner nodes --
    except loops, where a release anywhere in the body marks the loop a
    cleanup sweep (``for f in files: drop(f)``) and kills at the head,
    covering the statically-possible-but-dynamically-empty iteration.
    """
    if stmt is None:
        return False
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        return any(
            kind in kinds and _is_under(inner, stmt)
            for inner, kinds in release_stmts.items()
        )
    if isinstance(
        stmt, (ast.If, ast.Try, ast.With, ast.AsyncWith, ast.excepthandler)
    ):
        return False
    return kind in release_stmts.get(stmt, set())


def _is_under(stmt: ast.stmt, root: ast.stmt) -> bool:
    return any(node is stmt for node in ast.walk(root))


def _transferred(
    module: ModuleInfo, call: ast.Call, escaped: Set[str]
) -> bool:
    """Ownership of the acquire's result moves out of this function."""
    bound = binding_name(module, call)
    if bound is not None and bound in escaped:
        return True
    for ancestor in module.ancestors(call):
        if isinstance(ancestor, ast.Return):
            return True
        if isinstance(ancestor, ast.Call) and ancestor is not call:
            if release_kind_of(ancestor) is not None:
                return True  # e.g. ctx.track_temp(create_temp_file(...))
        if isinstance(ancestor, ast.stmt):
            break
    stmt = module.statement_of(call)
    if isinstance(stmt, ast.Assign):
        from repro.lint.effects import _store_root
        for target in stmt.targets:
            root = _store_root(target)
            if not isinstance(target, ast.Name) and root in escaped:
                return True  # self.f = acquire(...) / out[k] = acquire(...)
    return False


def _in_with_context(module: ModuleInfo, call: ast.Call) -> bool:
    for ancestor in module.ancestors(call):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if any(n is call for n in ast.walk(item.context_expr)):
                    return True
    return False


# ---------------------------------------------------------------------------
# IPR1xx: lock discipline
# ---------------------------------------------------------------------------
def _lock_events(
    module: ModuleInfo, info: FunctionInfo
) -> List[Tuple[int, int, str, object]]:
    """(line, col, kind, payload) events in source order.  Kinds:
    ``acquire`` (payload: (token, call)), ``release`` (payload: call),
    ``call`` (payload: call -- resolved later), ``wait`` (payload:
    call)."""
    events: List[Tuple[int, int, str, object]] = []
    for node in iter_scope(info.node):
        if not isinstance(node, ast.Call):
            continue
        attr = attr_of_call(node)
        pos = (node.lineno, node.col_offset)
        if acquire_kind_of(node, info.name) == LOCK:
            events.append(
                pos + ("acquire", (lock_token(node, module, info), node))
            )
        elif release_kind_of(node) == LOCK:
            events.append(pos + ("release", node))
        elif (
            attr in WAIT_ATTRS
            and attr != info.name
            and _is_yield_driven(module, node)
        ):
            events.append(pos + ("wait", node))
        else:
            events.append(pos + ("call", node))
    events.sort(key=lambda e: (e[0], e[1]))
    return events


def _is_yield_driven(module: ModuleInfo, call: ast.Call) -> bool:
    """The call's result is yielded / yield-from'd / awaited -- i.e. it
    is a cooperative wait the kernel parks the process on, not a plain
    host method that happens to be named ``get``."""
    for ancestor in module.ancestors(call):
        if isinstance(ancestor, (ast.Yield, ast.YieldFrom, ast.Await)):
            return True
        if isinstance(ancestor, ast.stmt):
            return False
    return False


def _wait_while_holding(
    graph: CallGraph,
    summaries: Dict[Key, EffectSummary],
    module: ModuleInfo,
    info: FunctionInfo,
    key: Key,
) -> Iterator[Finding]:
    held: Dict[str, ast.Call] = {}
    for _line, _col, kind, payload in _lock_events(module, info):
        if kind == "acquire":
            token, call = payload  # type: ignore[misc]
            held[token] = call
        elif kind == "release":
            held.clear()  # coarse: any release ends the held region
        elif kind == "wait" and held:
            call = payload  # type: ignore[assignment]
            holders = ", ".join(sorted(held))
            yield make_finding(
                module, call, "IPR102",
                f"blocking wait .{attr_of_call(call)}() while holding "
                f"{holders} in {info.qualname!r} -- the holder can stall "
                f"indefinitely with the lock pinned",
            )


def _order_cycles(
    graph: CallGraph,
    summaries: Dict[Key, EffectSummary],
    modules: List[ModuleInfo],
) -> Iterator[Finding]:
    """Build the token-level acquisition-order graph and report each
    nontrivial strongly connected component once."""
    # edge: held token -> acquired token, with one sample site.
    edges: Dict[str, Dict[str, Tuple[ModuleInfo, ast.Call, str]]] = {}

    for module in modules:
        for info in module.functions:
            key = func_key(module, info)
            site_by_call = {s.call: s for s in graph.call_sites(key)}
            held: Dict[str, ast.Call] = {}
            for _l, _c, kind, payload in _lock_events(module, info):
                if kind == "acquire":
                    token, call = payload  # type: ignore[misc]
                    for h in held:
                        if h != token:
                            edges.setdefault(h, {}).setdefault(
                                token, (module, call, info.qualname)
                            )
                    held[token] = call
                elif kind == "release":
                    held.clear()
                elif kind == "call" and held:
                    call = payload  # type: ignore[assignment]
                    site = site_by_call.get(call)
                    if site is None:
                        continue
                    for tkey in site.precise:
                        tsum = summaries.get(tkey)
                        if tsum is None:
                            continue
                        for token in tsum.lock_tokens:
                            for h in held:
                                if h != token:
                                    edges.setdefault(h, {}).setdefault(
                                        token,
                                        (module, call, info.qualname),
                                    )

    for component in _cycles(edges):
        ordered = sorted(component)
        # Anchor at the lexically first sample edge inside the cycle.
        samples = [
            edges[a][b]
            for a in ordered for b in edges.get(a, {})
            if b in component
        ]
        module, call, qualname = min(
            samples, key=lambda s: (s[0].rel, s[1].lineno)
        )
        chain = " -> ".join(ordered + [ordered[0]])
        yield make_finding(
            module, call, "IPR101",
            f"lock acquisition-order cycle {chain} (sample edge in "
            f"{qualname!r}) -- opposite-order holders can deadlock",
        )


def _cycles(
    edges: Dict[str, Dict[str, Tuple[ModuleInfo, ast.Call, str]]]
) -> List[Set[str]]:
    """Strongly connected components with more than one token."""
    nodes = set(edges)
    for targets in edges.values():
        nodes.update(targets)
    reach: Dict[str, Set[str]] = {}
    for start in sorted(nodes):
        seen: Set[str] = set()
        stack = list(edges.get(start, ()))
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(edges.get(cur, ()))
        reach[start] = seen
    out: List[Set[str]] = []
    assigned: Set[str] = set()
    for node in sorted(nodes):
        if node in assigned or node not in reach[node]:
            continue
        component = {
            other
            for other in reach[node]
            if node in reach.get(other, ())
        }
        component.add(node)
        if len(component) > 1:
            out.append(component)
            assigned |= component
    return out


# ---------------------------------------------------------------------------
# IPR2xx: cell purity
# ---------------------------------------------------------------------------
def _is_cell(info: FunctionInfo) -> bool:
    for dec in getattr(info.node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = call_name(target)
        if name is not None and name.split(".")[-1] == "cell":
            return True
    return False


def _cell_purity(
    graph: CallGraph, summaries: Dict[Key, EffectSummary]
) -> List[CellPurity]:
    cells: List[CellPurity] = []
    for key in sorted(graph.functions):
        module, info = graph.functions[key]
        if not _is_cell(info):
            continue
        violations: Dict[str, List[Origin]] = {}
        for origin in sorted(
            summaries[key].origins,
            key=lambda o: (o.path, o.line, o.kind),
        ):
            rule = PURITY_KINDS[origin.kind][0]
            violations.setdefault(rule, []).append(origin)
        cells.append(
            CellPurity(
                key=key,
                qualname=info.qualname,
                module=module.rel,
                line=info.lineno,
                violations=violations,
            )
        )
    return cells
