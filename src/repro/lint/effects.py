"""Transitive effect inference over the call graph.

Every function gets an :class:`EffectSummary`:

* **purity-relevant origins** -- concrete source locations where the
  function (or anything it transitively calls) mutates module-level
  state, reads a wall clock / the global RNG / OS entropy, or performs
  host I/O.  Origins survive propagation, so a cell-purity finding can
  name the exact line that made a ``@cell`` impure and a sample call
  path to it.
* **flags** -- yields/blocks, touches a simulated device, can raise.
* **resource deltas** -- per resource kind (lock / pin / temp file):
  whether the function *transfers* a freshly acquired resource to its
  caller (returns it or stores it into a caller-owned container), and
  whether it *releases* resources of that kind.  The escape pass treats
  a call to a transferring helper as an acquire at the call site and a
  call to a releasing helper as a release.

Propagation discipline: purity origins flow over precise **and** fuzzy
call edges (purity is a universal claim; over-approximation is the
sound direction).  Resource deltas and flags flow over precise edges
only (a fabricated edge there would fabricate escape findings).

An origin whose line carries a matching ``# simlint: disable=`` comment
(its IPR rule, or the DET rule that already sanctions the site) is a
*designated* impurity -- deterministic memo caches, the process-unique
stream counter, trace-collection plumbing -- and is dropped at
extraction, so one annotation at the source absolves every caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.callgraph import CallGraph, Key
from repro.lint.rules_det import _GLOBAL_RNG, _OS_ENTROPY, _WALL_CLOCK
from repro.lint.scopes import (
    FunctionInfo,
    ModuleInfo,
    attr_of_call,
    call_name,
    iter_scope,
)

# ---------------------------------------------------------------------------
# Effect kinds
# ---------------------------------------------------------------------------
GLOBAL_MUT = "global-mutation"
WALL_CLOCK = "wall-clock"
GLOBAL_RNG = "global-rng"
OS_ENTROPY = "os-entropy"
IO = "host-io"

#: kind -> (IPR rule it feeds, DET rule whose waiver also sanctions it)
PURITY_KINDS: Dict[str, Tuple[str, Optional[str]]] = {
    GLOBAL_MUT: ("IPR201", None),
    WALL_CLOCK: ("IPR202", "DET001"),
    GLOBAL_RNG: ("IPR202", "DET002"),
    OS_ENTROPY: ("IPR202", "DET003"),
    IO: ("IPR203", None),
}

#: Resource kinds shared with the escape pass.
LOCK = "lock"
PIN = "pin"
TEMP = "temp-file"
RESOURCE_KINDS = (LOCK, PIN, TEMP)

ACQUIRE_ATTRS: Dict[str, FrozenSet[str]] = {
    LOCK: frozenset({"acquire", "request"}),
    PIN: frozenset({"pin"}),
    TEMP: frozenset({"create_temp_file"}),
}
RELEASE_ATTRS: Dict[str, FrozenSet[str]] = {
    LOCK: frozenset({"release", "release_if_held", "release_all"}),
    PIN: frozenset({"unpin", "unpin_all", "release_page"}),
    TEMP: frozenset({"drop_temp_file", "drop_temp", "track_temp"}),
}

_IO_CALLS = frozenset({
    "open", "os.remove", "os.unlink", "os.makedirs", "os.mkdir",
    "os.rmdir", "os.rename", "os.replace", "os.symlink", "os.chmod",
    "shutil.rmtree", "shutil.copy", "shutil.copyfile", "shutil.move",
    "shutil.copytree", "tempfile.mkstemp", "tempfile.mkdtemp",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryDirectory",
})

_MUTATING_METHODS = frozenset({
    "append", "add", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "reverse", "setdefault", "sort", "update",
})

#: Container-transfer methods: ``C.append(x)`` moves ownership of x
#: into C for the escape pass's transfer analysis.
_TRANSFER_METHODS = frozenset({
    "append", "add", "insert", "setdefault", "update", "track_temp",
})

#: Unbounded cooperative waits (consumer/producer dependent), the
#: blocking-while-holding hazard class (IPR102).
WAIT_ATTRS = frozenset({"get", "put", "wait", "drain", "put_with_patience"})


@dataclass(frozen=True)
class Origin:
    """One concrete impurity site (survives propagation verbatim)."""

    kind: str
    path: str
    line: int
    symbol: str
    detail: str


@dataclass
class EffectSummary:
    """Inferred effects of one function, local + transitive."""

    key: Key
    yields_: bool = False
    raises_: bool = False
    device: bool = False
    #: Per purity kind: the origin sites (transitively reachable).
    origins: Set[Origin] = field(default_factory=set)
    #: Resource kinds this function transfers to its caller.
    transfers: Set[str] = field(default_factory=set)
    #: Resource kinds this function releases (directly or via helpers).
    releases: Set[str] = field(default_factory=set)
    #: Lock tokens this function (transitively) acquires -- feeds the
    #: acquisition-order graph.
    lock_tokens: Set[str] = field(default_factory=set)


# ---------------------------------------------------------------------------
# Small AST helpers shared with rules_ipr
# ---------------------------------------------------------------------------
def has_literal_pin(call: ast.Call) -> bool:
    for kw in call.keywords:
        if (
            kw.arg == "pin"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
        ):
            return True
    return False


def acquire_kind_of(call: ast.Call, func_name: str) -> Optional[str]:
    """The resource kind *call* acquires, if any (primitive frontier).

    Functions that *are* the primitive (``acquire``, ``create_temp_file``
    implementations and the page-fetch internals) are exempt, mirroring
    the RES rules.
    """
    attr = attr_of_call(call)
    if attr == func_name:
        return None
    if attr in ACQUIRE_ATTRS[LOCK]:
        return LOCK
    if attr in ACQUIRE_ATTRS[PIN]:
        return PIN
    if attr in ACQUIRE_ATTRS[TEMP]:
        return TEMP
    if has_literal_pin(call) and func_name not in (
        "get_page", "read_page", "read_table_page"
    ):
        return PIN
    return None


def release_kind_of(call: ast.Call) -> Optional[str]:
    attr = attr_of_call(call)
    for kind, attrs in RELEASE_ATTRS.items():
        if attr in attrs:
            return kind
    return None


def lock_token(
    call: ast.Call, module: ModuleInfo, info: FunctionInfo
) -> str:
    """A stable token naming the lock *class* behind an acquire site:
    the receiver chain with ``self``/``cls`` replaced by the enclosing
    class, trimmed to its two most specific segments."""
    base = call_name(call.func)
    if base is None:
        return "<lock>"
    parts = base.split(".")[:-1]  # drop the .acquire/.request leaf
    if parts and parts[0] in ("self", "cls"):
        parts[0] = info.class_name or parts[0]
    if len(parts) > 2:
        parts = parts[-2:]
    return ".".join(parts) if parts else "<lock>"


# ---------------------------------------------------------------------------
# Local extraction
# ---------------------------------------------------------------------------
def _module_globals(module: ModuleInfo) -> Set[str]:
    """Names bound at module top level (mutable module state surface)."""
    names: Set[str] = set()

    def scan(stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            names.add(node.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    names.add(stmt.target.id)
            elif isinstance(stmt, (ast.If, ast.Try)):
                scan(stmt.body)
                scan(stmt.orelse)
                if isinstance(stmt, ast.Try):
                    scan(stmt.finalbody)

    scan(module.tree.body)
    return names


def _suppressed(module: ModuleInfo, line: int, kind: str) -> bool:
    ipr_rule, det_rule = PURITY_KINDS[kind]
    if module.suppressed(line, ipr_rule):
        return True
    return det_rule is not None and module.suppressed(line, det_rule)


def _local_origins(
    module: ModuleInfo, info: FunctionInfo, module_globals: Set[str]
) -> Set[Origin]:
    """Purity-relevant sites in one function's own scope."""
    out: Set[Origin] = set()

    def add(kind: str, node: ast.AST, detail: str) -> None:
        line = getattr(node, "lineno", info.lineno)
        if _suppressed(module, line, kind):
            return
        out.add(Origin(kind, module.rel, line, info.qualname, detail))

    declared_global: Set[str] = set()
    for node in iter_scope(info.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    for node in iter_scope(info.node):
        if isinstance(node, ast.Call):
            name = module.resolve(call_name(node.func))
            if name in _WALL_CLOCK:
                add(WALL_CLOCK, node, f"calls {name}()")
            elif name in _GLOBAL_RNG:
                add(GLOBAL_RNG, node, f"calls {name}()")
            elif name in _OS_ENTROPY:
                add(OS_ENTROPY, node, f"calls {name}()")
            elif name in _IO_CALLS:
                add(IO, node, f"calls {name}()")
            elif name == "next":
                # next(COUNTER) on a module-level iterator advances
                # shared state (the stream-identity idiom).
                for arg in node.args[:1]:
                    if (
                        isinstance(arg, ast.Name)
                        and arg.id in module_globals
                    ):
                        add(
                            GLOBAL_MUT, node,
                            f"advances module-level iterator {arg.id!r}",
                        )
            else:
                attr = attr_of_call(node)
                base = call_name(node.func)
                if (
                    attr in _MUTATING_METHODS
                    and base is not None
                    and base.split(".")[0] in module_globals
                    and base.split(".")[0] not in ("self", "cls")
                ):
                    add(
                        GLOBAL_MUT, node,
                        f"mutates module-level {base.split('.')[0]!r} "
                        f"via .{attr}()",
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                root = _store_root(target)
                if root is None:
                    continue
                if root in declared_global:
                    add(
                        GLOBAL_MUT, node,
                        f"assigns global {root!r}",
                    )
                elif (
                    not isinstance(target, ast.Name)
                    and root in module_globals
                    and root not in ("self", "cls")
                ):
                    add(
                        GLOBAL_MUT, node,
                        f"stores into module-level {root!r}",
                    )
                elif (
                    not isinstance(target, ast.Name)
                    and root in module.imports
                    and "." not in module.imports[root]
                ):
                    add(
                        GLOBAL_MUT, node,
                        f"stores into imported module {root!r}",
                    )
    return out


def _store_root(target: ast.AST) -> Optional[str]:
    """The base name of a store target (``X`` of ``X[k].y = v``)."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _local_raises(info: FunctionInfo) -> bool:
    return any(
        isinstance(node, ast.Raise) for node in iter_scope(info.node)
    )


# ---------------------------------------------------------------------------
# Transfer analysis (feeds the escape pass)
# ---------------------------------------------------------------------------
def transferred_names(info: FunctionInfo) -> Set[str]:
    """Local names whose value escapes to the caller: returned or
    yielded directly, stored into a parameter/``self`` attribute or
    container, or appended into a local container that itself escapes.

    One fixpoint over the function body; used both to compute a
    function's ``transfers`` effect and to exempt transferred resources
    from its own escape findings (ownership moved, the caller is
    charged at the call site instead).
    """
    args = info.node.args
    params = {
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
    }
    escaped: Set[str] = set(params) | {"self", "cls"}
    #: (container, element) candidate moves discovered in one sweep.
    moves: List[Tuple[str, str]] = []
    direct: Set[str] = set()

    for node in iter_scope(info.node):
        if isinstance(node, ast.Return) and node.value is not None:
            for leaf in _name_leaves(node.value):
                direct.add(leaf)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                for leaf in _name_leaves(node.value):
                    direct.add(leaf)
        elif isinstance(node, ast.Call):
            attr = attr_of_call(node)
            base = call_name(node.func)
            if attr in _TRANSFER_METHODS and base is not None:
                root = base.split(".")[0]
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        moves.append((root, arg.id))
        elif isinstance(node, ast.Assign):
            value_names = (
                [node.value.id] if isinstance(node.value, ast.Name) else []
            )
            for target in node.targets:
                root = _store_root(target)
                if root is None or isinstance(target, ast.Name):
                    continue
                for vname in value_names:
                    moves.append((root, vname))

    result = set(direct)
    changed = True
    while changed:
        changed = False
        for container, element in moves:
            if (
                (container in escaped or container in result)
                and element not in result
            ):
                result.add(element)
                changed = True
    return result


def _name_leaves(expr: ast.AST) -> List[str]:
    """Plain names returned/yielded as-is or inside tuples/lists."""
    if isinstance(expr, ast.Name):
        return [expr.id]
    if isinstance(expr, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in expr.elts:
            out.extend(_name_leaves(elt))
        return out
    return []


def binding_name(module: ModuleInfo, call: ast.Call) -> Optional[str]:
    """The local name an acquire call's result is bound to, unwrapping
    ``x = yield ...`` / ``x = yield from ...`` / ``x = wrap(...)``."""
    stmt = module.statement_of(call)
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    return None


# ---------------------------------------------------------------------------
# The fixpoint
# ---------------------------------------------------------------------------
def infer_effects(graph: CallGraph) -> Dict[Key, EffectSummary]:
    """Local extraction + worklist propagation to a fixpoint."""
    summaries: Dict[Key, EffectSummary] = {}
    globals_cache: Dict[str, Set[str]] = {}

    for key, (module, info) in graph.functions.items():
        if module.rel not in globals_cache:
            globals_cache[module.rel] = _module_globals(module)
        summary = EffectSummary(key=key)
        summary.yields_ = info.is_generator
        summary.raises_ = _local_raises(info)
        summary.origins = _local_origins(
            module, info, globals_cache[module.rel]
        )
        escaped = transferred_names(info)
        for node in iter_scope(info.node):
            if not isinstance(node, ast.Call):
                continue
            kind = acquire_kind_of(node, info.name)
            if kind is not None:
                if kind == LOCK:
                    summary.lock_tokens.add(lock_token(node, module, info))
                bound = binding_name(module, node)
                if _inside_release_call(module, node):
                    # track_temp(create_temp_file(...)): born released --
                    # custody lands with the tracking context's teardown
                    # sweep, so neither this function nor its caller
                    # owes a release.
                    pass
                elif (bound is not None and bound in escaped) or (
                    _is_returned_expression(module, node)
                ):
                    summary.transfers.add(kind)
            rkind = release_kind_of(node)
            if rkind is not None:
                summary.releases.add(rkind)
        summaries[key] = summary

    # Worklist propagation.  Purity origins flow over precise + fuzzy
    # edges; flags/releases/lock tokens over precise edges only.
    # `transfers` is deliberately NOT transitive: a caller that receives
    # a resource and passes it on shows up through its own analysis.
    callers_precise: Dict[Key, Set[Key]] = {k: set() for k in summaries}
    callers_any: Dict[Key, Set[Key]] = {k: set() for k in summaries}
    for key in summaries:
        for callee in graph.callees(key, fuzzy=False):
            if callee in summaries:
                callers_precise[callee].add(key)
        for callee in graph.callees(key, fuzzy=True):
            if callee in summaries:
                callers_any[callee].add(key)

    work: List[Key] = list(summaries)
    in_work = set(work)
    while work:
        key = work.pop()
        in_work.discard(key)
        summary = summaries[key]
        for caller_key in callers_any[key]:
            caller = summaries[caller_key]
            changed = False
            if not summary.origins.issubset(caller.origins):
                caller.origins |= summary.origins
                changed = True
            if changed and caller_key not in in_work:
                work.append(caller_key)
                in_work.add(caller_key)
        for caller_key in callers_precise[key]:
            caller = summaries[caller_key]
            changed = False
            if summary.yields_ and not caller.yields_:
                caller.yields_ = True
                changed = True
            if summary.raises_ and not caller.raises_:
                caller.raises_ = True
                changed = True
            if not summary.releases.issubset(caller.releases):
                caller.releases |= summary.releases
                changed = True
            if not summary.lock_tokens.issubset(caller.lock_tokens):
                caller.lock_tokens |= summary.lock_tokens
                changed = True
            if changed and caller_key not in in_work:
                work.append(caller_key)
                in_work.add(caller_key)
    return summaries


def _is_returned_expression(module: ModuleInfo, call: ast.Call) -> bool:
    """``return ACQ(...)`` / ``return wrap(ACQ(...))`` -- ownership
    moves to the caller without ever being named."""
    for ancestor in module.ancestors(call):
        if isinstance(ancestor, ast.Return):
            return True
        if isinstance(ancestor, ast.stmt):
            return False
    return False


def _inside_release_call(module: ModuleInfo, call: ast.Call) -> bool:
    """Whether *call* sits in the argument list of a release-family
    call (``ctx.track_temp(ctx.sm.create_temp_file(...))``)."""
    for ancestor in module.ancestors(call):
        if isinstance(ancestor, ast.Call) and ancestor is not call:
            if release_kind_of(ancestor) is not None:
                return True
        if isinstance(ancestor, ast.stmt):
            return False
    return False
