"""Per-function control-flow graphs with exception edges.

The interprocedural passes (:mod:`repro.lint.rules_ipr`) need to answer
one question precisely: *from this acquire, can control reach a function
exit -- normal or exceptional -- without passing a release?*  That is a
reachability query over a CFG whose edges include the ways a sim process
actually unwinds.

The exception model is deliberately the simulator's, not CPython's:
interrupts (query abort, injected crash, deadline) land at **yield
points**, and typed faults propagate from explicit ``raise``.  So a
statement grows an exception edge when it contains ``yield`` /
``yield from`` / ``await``, is a ``raise`` or ``assert``, or (callers
opt in via *extra_raisers*) calls an in-tree function whose body can
raise.  Plain host-level statements between an acquire and its ``try``
-- ``packet.phase = "write"`` -- correctly do not unwind, which is what
keeps the tree's idiomatic acquire-then-try pattern clean.

``finally`` bodies are *duplicated* per continuation (normal fall
through, exception propagation, each routed ``return``/``break``/
``continue``), so a release inside a ``finally`` kills the resource on
every path through it without inventing false normal-to-exceptional
crossovers.  A ``return`` inside a ``finally`` overrides the pending
action, exactly as in CPython.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

#: Virtual node kinds (no statement attached).
ENTRY = "entry"
NORMAL_EXIT = "normal-exit"
EXCEPT_EXIT = "except-exit"
STMT = "stmt"


@dataclass
class Node:
    """One CFG node: a statement occurrence or a virtual entry/exit.

    ``finally`` duplication means one ``ast.stmt`` may be attached to
    several nodes; analyses classify nodes by ``stmt``, not identity.
    """

    id: int
    kind: str
    stmt: Optional[ast.stmt] = None
    succ: List[int] = field(default_factory=list)
    #: Successors taken only when the statement raises/unwinds.
    exc_succ: List[int] = field(default_factory=list)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.entry = self._new(ENTRY)
        self.normal_exit = self._new(NORMAL_EXIT)
        self.except_exit = self._new(EXCEPT_EXIT)

    def _new(self, kind: str, stmt: Optional[ast.stmt] = None) -> int:
        node = Node(id=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        return node.id

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succ:
            self.nodes[src].succ.append(dst)

    def exc_edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].exc_succ:
            self.nodes[src].exc_succ.append(dst)

    # -- queries ---------------------------------------------------------
    def successors(self, node_id: int) -> List[int]:
        node = self.nodes[node_id]
        return node.succ + node.exc_succ

    def nodes_for(self, stmt: ast.stmt) -> List[Node]:
        """Every node occurrence of *stmt* (finally bodies duplicate)."""
        return [n for n in self.nodes if n.stmt is stmt]

    def reachable_exits(
        self,
        start_ids: List[int],
        blocked: Callable[[Node], bool],
    ) -> Set[str]:
        """Which exit kinds are reachable from *start_ids* along paths
        on which no node satisfies *blocked* (the kill predicate).

        A start node that is itself blocked still blocks (the path is
        killed before it begins).
        """
        exits: Set[str] = set()
        seen: Set[int] = set()
        stack = [s for s in start_ids if not blocked(self.nodes[s])]
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            node = self.nodes[node_id]
            if node.kind in (NORMAL_EXIT, EXCEPT_EXIT):
                exits.add(node.kind)
                continue
            for succ in self.successors(node_id):
                if not blocked(self.nodes[succ]):
                    stack.append(succ)
        return exits


# ---------------------------------------------------------------------------
# Exception sources
# ---------------------------------------------------------------------------
def _contains_unwind_point(
    stmt: ast.stmt, extra_raisers: Optional[Callable[[ast.Call], bool]]
) -> bool:
    """Whether *stmt*'s own expressions can unwind: a yield point (where
    interrupts land), an assert, or an opted-in raising call."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # Nested bodies run later, in their own frame.
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            return True
        if (
            extra_raisers is not None
            and isinstance(node, ast.Call)
            and extra_raisers(node)
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# The builder
# ---------------------------------------------------------------------------
@dataclass
class _Frame:
    """Loop / finally routing context during construction."""

    #: Where an exception inside the current region unwinds to; a thunk
    #: so ``finally`` duplication can materialise the target lazily.
    exc_target: Callable[[], int]
    #: Finally bodies (innermost first) a ``return`` must run through.
    return_finals: Tuple[ast.Try, ...] = ()
    break_target: Optional[Callable[[], int]] = None
    continue_target: Optional[Callable[[], int]] = None
    #: Finally bodies a break/continue must run through before its jump
    #: (those between the statement and its loop).
    loop_finals: Tuple[ast.Try, ...] = ()


class _Builder:
    def __init__(
        self,
        func: ast.AST,
        extra_raisers: Optional[Callable[[ast.Call], bool]] = None,
    ) -> None:
        self.cfg = CFG()
        self.func = func
        self.extra_raisers = extra_raisers

    def build(self) -> CFG:
        frame = _Frame(exc_target=lambda: self.cfg.except_exit)
        ends = self._block(
            getattr(self.func, "body", []), [self.cfg.entry], frame
        )
        for end in ends:
            self.cfg.edge(end, self.cfg.normal_exit)
        return self.cfg

    # -- helpers ---------------------------------------------------------
    def _link(self, preds: List[int], node_id: int) -> None:
        for pred in preds:
            self.cfg.edge(pred, node_id)

    def _through_finals(
        self,
        finals: Tuple[ast.Try, ...],
        preds: List[int],
        frame_for: Callable[[ast.Try], _Frame],
    ) -> List[int]:
        """Route *preds* through duplicated copies of each pending
        ``finally`` body, innermost first; returns the final exits."""
        current = preds
        for try_stmt in finals:
            current = self._block(
                try_stmt.finalbody, current, frame_for(try_stmt)
            )
            if not current:  # finally itself returned/raised on all paths
                return []
        return current

    def _finals_frame(self, outer: _Frame) -> _Frame:
        """Statements inside a duplicated ``finally`` body unwind to the
        *outer* context, and their own return/break/continue overrides
        the pending action (no further finals pending for them)."""
        return _Frame(
            exc_target=outer.exc_target,
            return_finals=outer.return_finals,
            break_target=outer.break_target,
            continue_target=outer.continue_target,
            loop_finals=outer.loop_finals,
        )

    # -- statement dispatch ---------------------------------------------
    def _block(
        self, stmts: List[ast.stmt], preds: List[int], frame: _Frame
    ) -> List[int]:
        current = preds
        for stmt in stmts:
            if not current:
                break  # unreachable after return/raise/break
            current = self._stmt(stmt, current, frame)
        return current

    def _stmt(
        self, stmt: ast.stmt, preds: List[int], frame: _Frame
    ) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds, frame)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, frame)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds, frame)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds, frame)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, preds, frame)
        if isinstance(stmt, ast.Raise):
            node = self.cfg._new(STMT, stmt)
            self._link(preds, node)
            self.cfg.exc_edge(node, frame.exc_target())
            return []
        if isinstance(stmt, ast.Break):
            node = self.cfg._new(STMT, stmt)
            self._link(preds, node)
            outs = self._through_finals(
                frame.loop_finals, [node],
                lambda t: self._finals_frame(frame),
            )
            if frame.break_target is not None:
                target = frame.break_target()
                for out in outs:
                    self.cfg.edge(out, target)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.cfg._new(STMT, stmt)
            self._link(preds, node)
            outs = self._through_finals(
                frame.loop_finals, [node],
                lambda t: self._finals_frame(frame),
            )
            if frame.continue_target is not None:
                target = frame.continue_target()
                for out in outs:
                    self.cfg.edge(out, target)
            return []
        # Plain statement (expr, assign, yield-bearing expr...).
        node = self.cfg._new(STMT, stmt)
        self._link(preds, node)
        if _contains_unwind_point(stmt, self.extra_raisers):
            self.cfg.exc_edge(node, frame.exc_target())
        if isinstance(stmt, ast.Assert):
            return [node]
        return [node]

    def _return(
        self, stmt: ast.Return, preds: List[int], frame: _Frame
    ) -> List[int]:
        node = self.cfg._new(STMT, stmt)
        self._link(preds, node)
        if _contains_unwind_point(stmt, self.extra_raisers):
            self.cfg.exc_edge(node, frame.exc_target())
        outs = self._through_finals(
            frame.return_finals, [node],
            lambda t: self._finals_frame(frame),
        )
        for out in outs:
            self.cfg.edge(out, self.cfg.normal_exit)
        return []

    def _if(
        self, stmt: ast.If, preds: List[int], frame: _Frame
    ) -> List[int]:
        node = self.cfg._new(STMT, stmt)
        self._link(preds, node)
        if _contains_unwind_point_expr(stmt.test, self.extra_raisers):
            self.cfg.exc_edge(node, frame.exc_target())
        body_ends = self._block(stmt.body, [node], frame)
        else_ends = self._block(stmt.orelse, [node], frame) if stmt.orelse \
            else [node]
        return body_ends + else_ends

    def _loop(self, stmt, preds: List[int], frame: _Frame) -> List[int]:
        head = self.cfg._new(STMT, stmt)
        self._link(preds, head)
        # `for x in <iter>` evaluates the iterator; a yielding iter
        # expression unwinds from the head.
        test_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        if _contains_unwind_point_expr(test_expr, self.extra_raisers):
            self.cfg.exc_edge(head, frame.exc_target())
        after: List[int] = [head]  # loop may run zero times

        join: List[Optional[int]] = [None]

        def break_target() -> int:
            if join[0] is None:
                join[0] = self.cfg._new(STMT, stmt)  # loop-exit join
            return join[0]

        body_frame = _Frame(
            exc_target=frame.exc_target,
            return_finals=frame.return_finals,
            break_target=break_target,
            continue_target=lambda: head,
            loop_finals=(),
        )
        body_ends = self._block(stmt.body, [head], body_frame)
        for end in body_ends:
            self.cfg.edge(end, head)
        # while/for ... else: runs on normal loop exit.
        orelse_ends = self._block(stmt.orelse, [head], frame) \
            if stmt.orelse else after
        outs = list(orelse_ends)
        if join[0] is not None:
            outs.append(join[0])
        if stmt.orelse and head in outs:
            outs.remove(head)
        return outs or [head]

    def _with(self, stmt, preds: List[int], frame: _Frame) -> List[int]:
        node = self.cfg._new(STMT, stmt)
        self._link(preds, node)
        if any(
            _contains_unwind_point_expr(item.context_expr, self.extra_raisers)
            for item in stmt.items
        ):
            self.cfg.exc_edge(node, frame.exc_target())
        # __exit__ runs on both paths but is not user code; body
        # exceptions simply propagate.
        return self._block(stmt.body, [node], frame)

    # -- try/except/else/finally ----------------------------------------
    def _try(
        self, stmt: ast.Try, preds: List[int], frame: _Frame
    ) -> List[int]:
        has_finally = bool(stmt.finalbody)

        # Exception continuation for the *body*: handlers first; the
        # no-handler-matches path runs finally then unwinds outward.
        dispatch: List[Optional[int]] = [None]

        def body_exc_target() -> int:
            if dispatch[0] is None:
                dispatch[0] = self.cfg._new(STMT, stmt)
            return dispatch[0]

        body_frame = _Frame(
            exc_target=body_exc_target if (stmt.handlers or has_finally)
            else frame.exc_target,
            return_finals=((stmt,) + frame.return_finals) if has_finally
            else frame.return_finals,
            break_target=frame.break_target,
            continue_target=frame.continue_target,
            loop_finals=((stmt,) + frame.loop_finals) if has_finally
            else frame.loop_finals,
        )
        body_ends = self._block(stmt.body, preds, body_frame)
        # try ... else: runs only after a clean body.
        if stmt.orelse:
            body_ends = self._block(stmt.orelse, body_ends, body_frame)

        normal_outs: List[int] = []
        exc_outs: List[int] = []  # continuations that must re-unwind

        # Handlers: each gets the dispatch node as predecessor.  Their
        # own exceptions run finally then unwind outward.
        if dispatch[0] is not None or stmt.handlers:
            dsp = body_exc_target()
            handler_frame = _Frame(
                exc_target=self._deferred_outer_exc(stmt, frame)
                if has_finally else frame.exc_target,
                return_finals=((stmt,) + frame.return_finals)
                if has_finally else frame.return_finals,
                break_target=frame.break_target,
                continue_target=frame.continue_target,
                loop_finals=((stmt,) + frame.loop_finals) if has_finally
                else frame.loop_finals,
            )
            matched_any = False
            for handler in stmt.handlers:
                hnode = self.cfg._new(STMT, handler)  # type: ignore[arg-type]
                self.cfg.edge(dsp, hnode)
                normal_outs.extend(
                    self._block(handler.body, [hnode], handler_frame)
                )
                matched_any = True
            if not matched_any or not _has_bare_except(stmt):
                # Unmatched exception: finally (if any), then outward.
                exc_outs.append(dsp)

        if has_finally:
            # Normal completion path.
            done: List[int] = []
            if body_ends:
                done.extend(
                    self._block(
                        stmt.finalbody, body_ends,
                        self._finals_frame(frame),
                    )
                )
            if normal_outs:
                done.extend(
                    self._block(
                        stmt.finalbody, normal_outs,
                        self._finals_frame(frame),
                    )
                )
            # Exception path: duplicated finally, then outward unwind.
            for src in exc_outs:
                fin_ends = self._block(
                    stmt.finalbody, [src], self._finals_frame(frame)
                )
                for end in fin_ends:
                    self.cfg.exc_edge(end, frame.exc_target())
            return done
        # No finally: unmatched exceptions unwind directly.
        for src in exc_outs:
            self.cfg.exc_edge(src, frame.exc_target())
        return body_ends + normal_outs

    def _deferred_outer_exc(
        self, stmt: ast.Try, frame: _Frame
    ) -> Callable[[], int]:
        """Exception target for handler bodies of a try with a finally:
        a fresh finally copy whose ends unwind outward."""
        memo: List[Optional[int]] = [None]

        def target() -> int:
            if memo[0] is None:
                gate = self.cfg._new(STMT, stmt)
                fin_ends = self._block(
                    stmt.finalbody, [gate], self._finals_frame(frame)
                )
                for end in fin_ends:
                    self.cfg.exc_edge(end, frame.exc_target())
                memo[0] = gate
            return memo[0]

        return target


def _has_bare_except(stmt: ast.Try) -> bool:
    return any(
        h.type is None
        or (isinstance(h.type, ast.Name)
            and h.type.id in ("BaseException", "Exception"))
        for h in stmt.handlers
    )


def _contains_unwind_point_expr(
    expr: Optional[ast.AST],
    extra_raisers: Optional[Callable[[ast.Call], bool]],
) -> bool:
    if expr is None:
        return False
    for node in ast.walk(expr):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            return True
        if (
            extra_raisers is not None
            and isinstance(node, ast.Call)
            and extra_raisers(node)
        ):
            return True
    return False


def build_cfg(
    func: ast.AST,
    extra_raisers: Optional[Callable[[ast.Call], bool]] = None,
) -> CFG:
    """The CFG of one function body.

    *extra_raisers* lets callers mark specific calls as unwind points
    (e.g. calls whose in-tree target transitively ``raise``\\ s); by
    default only yield points, ``raise``, and ``assert`` unwind.
    """
    return _Builder(func, extra_raisers).build()


# ---------------------------------------------------------------------------
# Statement-level lookup used by the escape pass
# ---------------------------------------------------------------------------
def statement_index(cfg: CFG) -> Dict[int, ast.stmt]:
    """node id -> attached statement, for every statement node."""
    return {n.id: n.stmt for n in cfg.nodes if n.stmt is not None}
