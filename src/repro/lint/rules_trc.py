"""TRC -- trace-schema conformance at emit call sites.

The :mod:`repro.obs.schema` registry declares every event the engine
may emit and the fields each must carry; the tracer enforces the name
half at runtime.  These rules enforce the same contract *statically*,
so an unregistered name or missing field is a lint failure instead of a
crash in the first traced run:

* **TRC001** unregistered event name: a literal name passed to
  ``tracer.event(...)`` (or a family method such as
  ``tracer.osp("...")``, whose f-string families enumerate their
  allowed suffixes in the registry) that the registry does not declare.
* **TRC002** statically unverifiable event name: a non-literal name
  expression at an emit call site.  The runtime check still applies;
  annotate deliberate dynamic emits with ``# simlint: disable=TRC002``.
* **TRC003** missing required field: a literal-name emit whose keyword
  arguments lack a field the registry requires (calls forwarding
  ``**fields`` are skipped -- they cannot be checked statically).

Recognized emitters: any ``<...>.tracer.<method>(...)`` chain, the
``self.event``/``self._packet`` helpers inside ``*Tracer`` classes, and
the registered wrapper methods (``_record`` forwards to the ``fault``
family; ``_packet`` injects the packet identity fields).  The generic
dispatcher bodies themselves (``Tracer.osp`` building ``f"osp.{etype}"``
and friends) are exempt: their *call sites* are what get checked.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding, make_finding
from repro.lint.scopes import ModuleInfo
from repro.obs import schema

RULES: Dict[str, str] = {
    "TRC001": "Trace event name is not declared in the "
              "repro.obs.schema registry.",
    "TRC002": "Trace event name is not statically verifiable "
              "(non-literal expression).",
    "TRC003": "Trace emit lacks a field the registry requires for "
              "this event.",
}

#: Family dispatch methods on the tracer: ``osp(etype)`` emits
#: ``osp.<etype>``; the empty prefix means the literal is the full name.
_FAMILY_METHODS: Dict[str, str] = {
    "event": "",
    "osp": "osp",
    "pool": "pool",
    "lock": "lock",
    "fault": "fault",
    "lineage": "lineage",
    "fold": "fold",
    "proc": "proc",
}

#: Families whose dispatcher signature carries the required fields as
#: fixed positional parameters -- nothing left to check per call site.
_POSITIONAL_FAMILIES = frozenset({"pool", "lock", "proc"})

#: Emit wrappers: method name -> (family prefix, fields the wrapper
#: injects itself).  Their call sites are checked; their bodies are not.
_WRAPPERS: Dict[str, Tuple[str, FrozenSet[str]]] = {
    "_packet": ("", frozenset({"packet", "query", "engine", "op"})),
    "_record": ("fault", frozenset()),
}


def check(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        method = node.func.attr
        emit: Optional[Tuple[str, FrozenSet[str], bool]] = None
        if method in _FAMILY_METHODS and _is_tracer_emit(
            module, node, method
        ):
            prefix = _FAMILY_METHODS[method]
            emit = (
                prefix,
                frozenset(),
                prefix in _POSITIONAL_FAMILIES,
            )
        elif method in _WRAPPERS and isinstance(
            node.func.value, ast.Name
        ) and node.func.value.id == "self":
            prefix, injected = _WRAPPERS[method]
            emit = (prefix, injected, False)
        if emit is None:
            continue
        if _in_exempt_body(module, node):
            continue
        prefix, injected, fields_positional = emit
        yield from _check_emit(
            module, node, prefix, injected, fields_positional
        )


# ---------------------------------------------------------------------------
# Emitter recognition
# ---------------------------------------------------------------------------
def _is_tracer_emit(
    module: ModuleInfo, call: ast.Call, method: str
) -> bool:
    base = call.func.value  # type: ignore[union-attr]
    if isinstance(base, ast.Name) and base.id == "tracer":
        return True
    if isinstance(base, ast.Attribute) and base.attr == "tracer":
        return True
    # self.event(...) inside a *Tracer class is the raw emit itself.
    if (
        method == "event"
        and isinstance(base, ast.Name)
        and base.id == "self"
    ):
        func = module.enclosing_function(call)
        return bool(
            func and func.class_name and func.class_name.endswith("Tracer")
        )
    return False


def _in_exempt_body(module: ModuleInfo, node: ast.AST) -> bool:
    """Dispatcher and wrapper bodies forward non-literal names by
    design; only their call sites are checked."""
    func = module.enclosing_function(node)
    if func is None:
        return False
    if func.name in _WRAPPERS:
        return True
    return (
        func.name in _FAMILY_METHODS
        and func.class_name is not None
        and func.class_name.endswith("Tracer")
    )


# ---------------------------------------------------------------------------
# Name and field validation
# ---------------------------------------------------------------------------
def _check_emit(
    module: ModuleInfo,
    call: ast.Call,
    prefix: str,
    injected: FrozenSet[str],
    fields_positional: bool,
) -> Iterator[Finding]:
    if not call.args:
        return
    name_node = call.args[0]
    names = _literal_names(name_node, prefix)
    if names is None:
        verdict = _dynamic_name_verdict(name_node, prefix)
        if verdict is not None:
            yield make_finding(module, call, verdict[0], verdict[1])
        return
    for name in names:
        if not schema.is_registered(name):
            yield make_finding(
                module, call, "TRC001",
                f"trace event {name!r} is not declared in "
                f"repro.obs.schema; register it (or fix the typo)",
            )
            continue
        if fields_positional:
            continue
        if any(kw.arg is None for kw in call.keywords):
            continue  # **fields forwarding: not statically checkable
        present: Set[str] = {
            kw.arg for kw in call.keywords if kw.arg is not None
        }
        # _packet-style wrappers pass the subject positionally.
        missing = [
            f
            for f in schema.required_fields(name)
            if f not in present and f not in injected
        ]
        if missing:
            yield make_finding(
                module, call, "TRC003",
                f"emit of {name!r} lacks required field(s) "
                f"{', '.join(missing)} (see repro.obs.schema)",
            )


def _literal_names(
    node: ast.AST, prefix: str
) -> Optional[List[str]]:
    """All concrete event names a literal name expression can produce,
    or None when the expression is not statically literal.

    Handles plain string constants and conditional expressions over
    them (``"retry" if ok else "giveup"``).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [f"{prefix}.{node.value}" if prefix else node.value]
    if isinstance(node, ast.IfExp):
        body = _literal_names(node.body, prefix)
        orelse = _literal_names(node.orelse, prefix)
        if body is not None and orelse is not None:
            return body + orelse
    return None


def _dynamic_name_verdict(
    node: ast.AST, prefix: str
) -> Optional[Tuple[str, str]]:
    """Classify a non-literal name expression.

    An f-string whose constant head names a registered dynamic family
    (``f"osp.{etype}"``) is allowed -- the family's suffixes are
    enumerated in the registry and checked at the family-method call
    sites plus at runtime.  Anything else is unverifiable.
    """
    if prefix == "" and isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            family = head.value.split(".", 1)[0]
            if head.value.endswith(".") and schema.family_suffixes(family):
                return None  # registered dynamic family
            return (
                "TRC001",
                f"f-string event name with head {head.value!r} does not "
                f"name a registered dynamic family; enumerate its "
                f"suffixes in repro.obs.schema",
            )
    return (
        "TRC002",
        "trace event name is not a literal; the registry cannot verify "
        "it statically (runtime validation still applies) -- annotate "
        "deliberate dynamic emits with '# simlint: disable=TRC002'",
    )
