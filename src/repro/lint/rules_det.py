"""DET -- determinism hazards.

The DES kernel's contract (DESIGN.md section 1) is byte-identical
replay from a seed: every differential test, chaos replay, and trace
invariant rests on it.  These rules flag the ways contributors break it
by accident:

* **DET001** wall-clock reads (``time.time``, ``datetime.now``,
  ``time.monotonic``...): real time leaking into simulation state or
  output.  Virtual time lives at ``sim.now``.  Intentional wall-time
  reporting (the harness's ``[... 3.1s wall]`` lines) carries a
  ``# simlint: disable=DET001`` annotation.
* **DET002** module-level / unseeded RNG: ``random.random()`` and
  friends draw from the process-global generator whose state depends on
  import order and everything else that ran; ``random.Random()`` with
  no arguments seeds from OS entropy; ``random.seed`` mutates shared
  global state.  Use a threaded ``random.Random(seed)`` instance.
* **DET003** OS entropy: ``os.urandom``, ``uuid.uuid1``/``uuid4``,
  ``secrets.*`` are nondeterministic by design.
* **DET004** ``id()`` in orderings or hashes: CPython object addresses
  differ run to run, so an ``id()`` inside a sort key or a ``hash()``
  makes the order (and anything downstream of it) irreproducible.
* **DET005** set-iteration order leaks: iterating a ``set`` directly
  (``for``, comprehension, ``list(...)``/``tuple(...)`` conversion)
  leaks hash order, which for strings is randomized per process.  Wrap
  the set in ``sorted(...)`` before its elements flow into trace
  events, scheduling, or output.
* **DET006** anonymous seed in experiment code: inside ``harness/`` and
  ``workloads/``, every ``random.Random(...)`` must be seeded through a
  *named* seed -- a constant from :mod:`repro.harness.config`
  (``FIG_QUERY_SEED``, ``CLIENT_SEED_BASE + i``...), a ``seed``
  parameter, or an expression derived from one.  A bare literal
  (``random.Random(42)``) or a loop index is an anonymous seed: the
  cell cache and the parallel fabric key results by *named* seeds
  recorded on the :class:`~repro.parallel.cells.CellSpec`, and an
  anonymous seed silently escapes that record.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.findings import Finding, make_finding
from repro.lint.scopes import ModuleInfo, call_name, iter_scope

RULES: Dict[str, str] = {
    "DET001": "Wall-clock call; use virtual time (sim.now) instead.",
    "DET002": "Module-level or unseeded RNG; use random.Random(seed).",
    "DET003": "OS entropy source (os.urandom / uuid / secrets).",
    "DET004": "id() used in a sort key or hash; addresses vary per run.",
    "DET005": "Iteration over a set leaks hash order; sort it first.",
    "DET006": "Anonymous RNG seed in experiment code; use a named seed "
              "constant (see repro.harness.config).",
}

#: Directories whose modules hold experiment definitions; only there is
#: seed *provenance* (DET006) enforced on top of plain seededness.
_EXPERIMENT_DIRS = ("harness", "workloads")

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_GLOBAL_RNG = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.sample",
    "random.shuffle", "random.uniform", "random.gauss",
    "random.normalvariate", "random.expovariate", "random.betavariate",
    "random.getrandbits", "random.randbytes", "random.triangular",
    "random.seed",
})

_OS_ENTROPY = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.randbits", "secrets.choice",
})

_ORDERING_CALLS = frozenset({"sorted", "min", "max"})


def check(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield from _check_call(module, node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            yield from _check_set_iteration(module, node.iter, "for loop")
        elif isinstance(node, ast.comprehension):
            yield from _check_set_iteration(
                module, node.iter, "comprehension"
            )


# ---------------------------------------------------------------------------
# DET001 / DET002 / DET003 / DET004 -- call-shaped hazards
# ---------------------------------------------------------------------------
def _check_call(module: ModuleInfo, call: ast.Call) -> Iterator[Finding]:
    name = module.resolve(call_name(call.func))
    if name in _WALL_CLOCK:
        yield make_finding(
            module, call, "DET001",
            f"wall-clock call {name}() breaks deterministic replay; "
            f"use virtual time (sim.now) or annotate intentional "
            f"wall-time reporting",
        )
    elif name in _GLOBAL_RNG:
        yield make_finding(
            module, call, "DET002",
            f"{name}() draws from the process-global RNG; thread a "
            f"seeded random.Random(seed) instance instead",
        )
    elif name == "random.Random" and not call.args and not call.keywords:
        yield make_finding(
            module, call, "DET002",
            "random.Random() with no seed falls back to OS entropy; "
            "pass an explicit seed",
        )
    elif name == "random.Random" and _in_experiment_code(module):
        args = list(call.args) + [kw.value for kw in call.keywords]
        if not any(_mentions_seed(arg) for arg in args):
            yield make_finding(
                module, call, "DET006",
                "random.Random() seeded anonymously in experiment code; "
                "seed it through a named constant (FIG_QUERY_SEED, "
                "CLIENT_SEED_BASE...) or a 'seed' parameter so the seed "
                "is recorded on the cell spec",
            )
    elif name in _OS_ENTROPY:
        yield make_finding(
            module, call, "DET003",
            f"{name}() is nondeterministic OS entropy; derive values "
            f"from the experiment seed instead",
        )
    if name in _ORDERING_CALLS or (
        isinstance(call.func, ast.Attribute) and call.func.attr == "sort"
    ):
        for kw in call.keywords:
            if kw.arg == "key":
                yield from _flag_id_calls(module, kw.value, "sort key")
    elif name == "hash":
        for arg in call.args:
            yield from _flag_id_calls(module, arg, "hash()")


def _flag_id_calls(
    module: ModuleInfo, tree: ast.AST, where: str
) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and "id" not in module.imports
        ):
            yield make_finding(
                module, node, "DET004",
                f"id() inside a {where}: object addresses differ "
                f"between runs, so the resulting order is not "
                f"reproducible",
            )


# ---------------------------------------------------------------------------
# DET006 -- seed provenance in experiment code
# ---------------------------------------------------------------------------
def _in_experiment_code(module: ModuleInfo) -> bool:
    parts = module.rel.replace("\\", "/").split("/")
    return any(d in parts for d in _EXPERIMENT_DIRS)


def _mentions_seed(expr: ast.AST) -> bool:
    """Whether any identifier leaf of *expr* names a seed
    (``FIG_QUERY_SEED``, ``scale.seed``, a ``seed`` parameter...)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "seed" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "seed" in node.attr.lower():
            return True
    return False


# ---------------------------------------------------------------------------
# DET005 -- set-iteration order leaks
# ---------------------------------------------------------------------------
def _is_set_expr(
    module: ModuleInfo, expr: ast.AST, set_locals: Set[str]
) -> bool:
    """Statically set-typed: a set display/comprehension, a
    ``set()``/``frozenset()`` call, a local bound only to such
    expressions, or a binary operation over them (`` | & - ^ ``)."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = module.resolve(call_name(expr.func))
        if name in ("set", "frozenset") and name not in module.imports:
            return True
        return False
    if isinstance(expr, ast.Name):
        return expr.id in set_locals
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(module, expr.left, set_locals) or _is_set_expr(
            module, expr.right, set_locals
        )
    return False


def _set_locals_of(module: ModuleInfo, scope: ast.AST) -> Set[str]:
    """Names bound *only* to set-typed expressions within one scope."""
    bound: Dict[str, bool] = {}
    for node in iter_scope(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                is_set = _is_set_expr(module, node.value, set())
                prior = bound.get(target.id)
                bound[target.id] = is_set if prior is None else (
                    prior and is_set
                )
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            if not isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                        ast.BitXor)):
                bound[node.target.id] = False
    return {name for name, is_set in bound.items() if is_set}


def _check_set_iteration(
    module: ModuleInfo, iter_expr: ast.AST, where: str
) -> Iterator[Finding]:
    func = module.enclosing_function(iter_expr)
    scope = func.node if func is not None else module.tree
    set_locals = _set_locals_of(module, scope)
    if _is_set_expr(module, iter_expr, set_locals):
        yield make_finding(
            module, iter_expr, "DET005",
            f"{where} iterates a set directly; hash order is not "
            f"deterministic across runs -- iterate sorted(...) instead",
        )
