"""The ``python -m repro.lint`` command line and its reporters.

Usage::

    python -m repro.lint [--format text|json]
                         [--baseline lint_baseline.json]
                         [--write-baseline] [--rules] [paths...]

Paths default to ``src`` (falling back to ``.``).  The default baseline
file is ``lint_baseline.json`` in the working directory and is silently
skipped when absent, so ``python -m repro.lint src`` does the right
thing both locally and in CI.  Exit status: 0 when no new findings,
1 otherwise (parse errors are findings too).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter
from typing import List, Optional

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.core import Finding, lint_paths, rule_catalogue

DEFAULT_BASELINE = "lint_baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: static analysis of the engine's determinism and "
            "cooperative-scheduling contracts"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            f"baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule, doc in rule_catalogue():
            print(f"{rule}  {doc}")
        return 0

    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    findings = lint_paths(paths)

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(findings, baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline: Counter = Counter()
    if args.baseline is not None or os.path.isfile(baseline_path):
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError:
            parser.error(f"baseline file not found: {baseline_path}")
        except (ValueError, KeyError) as exc:
            parser.error(f"bad baseline file: {exc}")

    new, grandfathered, stale = apply_baseline(findings, baseline)

    if args.format == "json":
        _report_json(new, grandfathered, stale)
    else:
        _report_text(new, grandfathered, stale, paths)
    return 1 if new else 0


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------
def _report_text(
    new: List[Finding],
    grandfathered: List[Finding],
    stale,
    paths: List[str],
) -> None:
    for finding in new:
        print(finding.render())
    bits = [f"{len(new)} finding(s)"]
    if grandfathered:
        bits.append(f"{len(grandfathered)} baselined")
    if stale:
        bits.append(
            f"{len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} "
            f"(fixed code; regenerate with --write-baseline)"
        )
    status = "clean" if not new else "FAILED"
    print(f"simlint: {', '.join(bits)} in {' '.join(paths)} -- {status}")


def _report_json(
    new: List[Finding], grandfathered: List[Finding], stale
) -> None:
    doc = {
        "version": 1,
        "findings": [f.to_dict() for f in new],
        "baselined": len(grandfathered),
        "stale_baseline_entries": [
            {"path": p, "rule": r, "snippet": s} for (p, r, s) in stale
        ],
    }
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
