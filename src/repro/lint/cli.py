"""The ``python -m repro.lint`` command line and its reporters.

Usage::

    python -m repro.lint [--format text|json|sarif] [--output FILE]
                         [--baseline lint_baseline.json]
                         [--write-baseline] [--rules] [--explain RULE]
                         [--profile default|tests] [--jobs N]
                         [--emit-module-table FILE] [paths...]

Paths default to ``src`` (falling back to ``.``).  The default baseline
file is ``lint_baseline.json`` in the working directory and is silently
skipped when absent, so ``python -m repro.lint src`` does the right
thing both locally and in CI.  Exit status: 0 when no new findings,
1 otherwise (parse errors are findings too).

``--profile tests`` is the relaxed rule set for ``tests/`` and
``examples/``: determinism (DET), trace-schema (TRC), and cell-purity
(IPR2xx) families are off -- test code freely uses clocks, ad-hoc
events, and deliberately impure fixtures -- while parse, yield,
resource-pairing, escape, and lock-discipline rules stay on.

``--emit-module-table FILE`` writes the parsed files' (size, mtime,
sha256) so the cell-cache digest job can skip re-hashing sources the
lint job already read (point ``REPRO_MODTABLE`` at the file).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import List, Optional

from repro.lint.baseline import (
    Baseline,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.core import (
    EXPLAIN,
    Finding,
    RULES,
    lint_paths,
    rule_catalogue,
)
from repro.lint.sarif import sarif_doc

DEFAULT_BASELINE = "lint_baseline.json"

#: profile name -> rule-id prefixes disabled under it.
PROFILES = {
    "default": (),
    "tests": ("DET", "TRC", "IPR2"),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: static analysis of the engine's determinism, "
            "cooperative-scheduling, and resource-safety contracts"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            f"baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print the full catalogue entry for one rule and exit",
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="default",
        help="rule profile (tests: relaxed set for test/example code)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse files with N processes (clamped to cpu_count)",
    )
    parser.add_argument(
        "--emit-module-table", default=None, metavar="FILE",
        help=(
            "also write a (size, mtime, sha256) table of every parsed "
            "file, reusable by the cell-cache digest via REPRO_MODTABLE"
        ),
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule, doc in rule_catalogue():
            print(f"{rule}  {doc}")
        return 0
    if args.explain is not None:
        return _explain(parser, args.explain.upper())

    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    findings = lint_paths(paths, jobs=args.jobs)

    disabled = PROFILES[args.profile]
    if disabled:
        findings = [
            f for f in findings if not f.rule.startswith(disabled)
        ]

    if args.emit_module_table:
        _emit_module_table(paths, args.emit_module_table)

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(findings, baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline = Baseline()
    if args.baseline is not None or os.path.isfile(baseline_path):
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError:
            parser.error(f"baseline file not found: {baseline_path}")
        except (ValueError, KeyError) as exc:
            parser.error(f"bad baseline file: {exc}")

    new, grandfathered, stale = apply_baseline(findings, baseline)

    out = open(args.output, "w", encoding="utf-8") if args.output \
        else sys.stdout
    try:
        if args.format == "json":
            _report_json(new, grandfathered, stale, out)
        elif args.format == "sarif":
            json.dump(
                sarif_doc(new, rule_catalogue()), out, indent=2,
                sort_keys=True,
            )
            out.write("\n")
        else:
            _report_text(new, grandfathered, stale, paths, out)
    finally:
        if out is not sys.stdout:
            out.close()
    return 1 if new else 0


def _explain(parser: argparse.ArgumentParser, rule: str) -> int:
    if rule not in RULES:
        parser.error(
            f"unknown rule {rule!r} (see python -m repro.lint --rules)"
        )
    print(f"{rule}: {RULES[rule]}")
    extra = EXPLAIN.get(rule)
    if extra:
        print()
        print(extra)
    return 0


def _emit_module_table(paths: List[str], out_path: str) -> None:
    """(size, mtime_ns, sha256) for every analyzed file -- lets the
    cell-cache digest skip re-hashing unchanged sources."""
    from repro.lint.core import iter_python_files

    files = {}
    for path in iter_python_files(paths):
        st = os.stat(path)
        with open(path, "rb") as fh:
            digest = hashlib.sha256(fh.read()).hexdigest()
        files[os.path.abspath(path)] = {
            "size": st.st_size,
            "mtime_ns": st.st_mtime_ns,
            "sha256": digest,
        }
    doc = {"version": 1, "files": files}
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------
def _report_text(
    new: List[Finding],
    grandfathered: List[Finding],
    stale,
    paths: List[str],
    out,
) -> None:
    for finding in new:
        print(finding.render(), file=out)
    bits = [f"{len(new)} finding(s)"]
    if grandfathered:
        bits.append(f"{len(grandfathered)} baselined")
    if stale:
        bits.append(
            f"{len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} "
            f"(fixed code; regenerate with --write-baseline)"
        )
    status = "clean" if not new else "FAILED"
    print(
        f"simlint: {', '.join(bits)} in {' '.join(paths)} -- {status}",
        file=out,
    )


def _report_json(
    new: List[Finding], grandfathered: List[Finding], stale, out
) -> None:
    doc = {
        "version": 2,
        "findings": [f.to_dict() for f in new],
        "baselined": len(grandfathered),
        "stale_baseline_entries": [
            {"path": p, "rule": r, "key": s} for (p, r, s) in stale
        ],
    }
    json.dump(doc, out, indent=2, sort_keys=True)
    out.write("\n")
