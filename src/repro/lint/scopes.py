"""Parsed-module model: AST, parents, imports, functions, suppressions.

Every rule family works from a :class:`ModuleInfo` built once per file:
the parse tree plus the cheap symbol-table facts the rules need --

* a parent map (rules walk *up* from an interesting node to its
  statement, enclosing ``try``, or enclosing function);
* the import alias table, so ``from time import monotonic as mt`` still
  resolves ``mt()`` to ``time.monotonic`` (the DET rules match on fully
  resolved dotted names);
* every function with its qualified name and whether it is a
  *generator* (contains ``yield`` in its own scope) -- the YLD rules'
  notion of "sim process";
* every name referenced anywhere (loads, attribute accesses, imports,
  ``__all__`` strings), which the project-wide unreachable-generator
  check consumes;
* the per-line ``# simlint: disable=RULE`` suppressions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_*,\s]+)")

#: Statement fields that hold lists of statements (sibling scans).
_BLOCK_FIELDS = ("body", "orelse", "finalbody")


@dataclass
class FunctionInfo:
    """One ``def`` in the module, with the facts the rules key on."""

    node: ast.AST
    name: str
    qualname: str
    lineno: int
    #: Contains ``yield``/``yield from`` in its own scope: a coroutine
    #: the simulation kernel (or a ``yield from`` chain) must drive.
    is_generator: bool
    #: Name of the enclosing class, if the def is a method.
    class_name: Optional[str] = None


class ModuleInfo:
    """One parsed source file plus its symbol-table summary."""

    def __init__(self, path: str, rel: str, source: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.suppressions = self._parse_suppressions()
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.imports = self._collect_imports()
        self.functions = self._collect_functions()
        self.generator_names: Set[str] = {
            f.name for f in self.functions if f.is_generator
        }
        self.referenced_names = self._collect_references()

    # -- suppressions ---------------------------------------------------
    def _parse_suppressions(self) -> Dict[int, Set[str]]:
        out: Dict[int, Set[str]] = {}
        for i, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = {
                    r.strip().upper()
                    for r in match.group(1).split(",")
                    if r.strip()
                }
                out[i] = rules
        return out

    def suppressed(self, line: int, rule: str) -> bool:
        """Whether *rule* is disabled on *line* (or on its statement's
        first line, for findings inside multi-line statements)."""
        rules = self.suppressions.get(line)
        return rules is not None and (rule in rules or "*" in rules)

    # -- imports --------------------------------------------------------
    def _collect_imports(self) -> Dict[str, str]:
        table: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return table

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Expand the first segment of a dotted name via the import
        table (``mt`` -> ``time.monotonic``, ``dt.now`` ->
        ``datetime.datetime.now``)."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        expansion = self.imports.get(head)
        if expansion is None:
            return dotted
        return f"{expansion}.{rest}" if rest else expansion

    # -- functions ------------------------------------------------------
    def _collect_functions(self) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []

        def visit(node: ast.AST, prefix: str, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qual = f"{prefix}{child.name}"
                    out.append(
                        FunctionInfo(
                            node=child,
                            name=child.name,
                            qualname=qual,
                            lineno=child.lineno,
                            is_generator=_has_own_yield(child),
                            class_name=cls,
                        )
                    )
                    visit(child, f"{qual}.<locals>.", cls)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}{child.name}.", child.name)
                else:
                    visit(child, prefix, cls)

        visit(self.tree, "", None)
        return out

    def enclosing_function(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The innermost function a node belongs to, if any."""
        cursor = self.parents.get(node)
        while cursor is not None:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for info in self.functions:
                    if info.node is cursor:
                        return info
            cursor = self.parents.get(cursor)
        return None

    # -- references (for the project-wide reachability check) -----------
    def _collect_references(self) -> Set[str]:
        refs: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                refs.add(node.id)
            elif isinstance(node, ast.Attribute):
                refs.add(node.attr)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    refs.add((alias.asname or alias.name).split(".")[-1])
            elif isinstance(node, ast.Assign):
                # Strings in __all__ count as references (public API).
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "__all__" in targets:
                    for elt in ast.walk(node.value):
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            refs.add(elt.value)
        return refs

    # -- generic tree helpers -------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cursor = self.parents.get(node)
        while cursor is not None:
            yield cursor
            cursor = self.parents.get(cursor)

    def statement_of(self, node: ast.AST) -> ast.stmt:
        """The nearest enclosing (or self) statement node."""
        cursor: ast.AST = node
        while not isinstance(cursor, ast.stmt):
            cursor = self.parents[cursor]
        return cursor

    def block_of(self, stmt: ast.stmt) -> Tuple[List[ast.stmt], int]:
        """The statement list containing *stmt* and its index in it."""
        parent = self.parents[stmt]
        for fname in _BLOCK_FIELDS:
            block = getattr(parent, fname, None)
            if isinstance(block, list) and stmt in block:
                return block, block.index(stmt)
        # ExceptHandler bodies hang off Try.handlers.
        if isinstance(parent, ast.excepthandler):
            return parent.body, parent.body.index(stmt)
        return [stmt], 0

    def snippet(self, lineno: int) -> str:
        """The stripped source text of one line (baseline keys)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def _has_own_yield(func: ast.AST) -> bool:
    """Whether *func* yields in its own scope (nested defs excluded)."""

    found = False

    def scan(node: ast.AST) -> None:
        nonlocal found
        if found:
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                found = True
                return
            scan(child)

    scan(func)
    return found


def iter_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own scope, skipping nested function bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def call_name(func: ast.AST) -> Optional[str]:
    """The dotted name of a call target (``sm.locks.acquire``), or None
    when any link in the chain is not a plain name/attribute."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        base = call_name(func.value)
        return f"{base}.{func.attr}" if base is not None else None
    return None


def attr_of_call(call: ast.Call) -> Optional[str]:
    """The final attribute name of a method call (``acquire``), if any."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None
