"""``simlint``: static analysis of the engine's determinism contracts.

Every result this reproduction produces rests on two guarantees the
runtime alone cannot cheaply enforce:

* the DES kernel replays **byte-identically** from a seed -- one
  ``time.time()`` or unseeded ``random.random()`` silently breaks every
  differential test and chaos replay;
* every sim process obeys the **cooperative yield/pin/lock discipline**
  the kernel assumes -- a yielding primitive whose event is dropped on
  the floor, or a lock acquire without a ``finally:`` release, produces
  bugs that only surface as a diverged trace hours later.

``repro.lint`` walks the AST of the whole tree (stdlib ``ast`` only, no
third-party dependencies) and flags violations before they run:

=======  ==================================================================
family   what it guards
=======  ==================================================================
``DET``  determinism hazards: wall clocks, unseeded/global RNG, OS
         entropy, ``id()`` in orderings, set-iteration order leaks
``YLD``  cooperative scheduling: dropped yielding primitives and
         generators unreachable from the kernel's spawn surface
``RES``  resource pairing: every lock/resource acquire and buffer pin
         released on **all** exits (``try/finally`` or context manager)
``TRC``  trace-schema conformance: every emit call site uses an event
         name (and the required fields) declared in
         :mod:`repro.obs.schema`
=======  ==================================================================

Run it as ``python -m repro.lint [--format text|json]
[--baseline lint_baseline.json] [paths...]``; suppress a deliberate
finding in place with a ``# simlint: disable=RULE`` comment on the
flagged line, or grandfather legacy findings in a committed baseline
file.  ``python -m repro.lint --rules`` prints the full catalogue.
"""

from repro.lint.core import Finding, lint_paths, rule_catalogue

__all__ = ["Finding", "lint_paths", "rule_catalogue"]
