"""Streaming operator chains compiled to push-based stage closures.

PR 4 taught expressions to :meth:`~repro.relational.expressions.Expr.bind`
into per-row closures; this module extends that compilation to whole
operator chains.  A run of streaming operators between two pipeline
breakers -- filter -> project -> limit -> distinct, plus the probe side
of semi/anti/outer joins -- becomes a list of *stages*.  Each stage is a
pair of pure functions over a row batch:

* ``cost(batch)``  -- the tuple count the iterator reference charges the
  simulated CPU for the same batch (0 where the reference charges
  nothing, e.g. LIMIT), and
* ``apply(batch)`` -- the batch transformation itself.

The push driver in :mod:`repro.pushexec.compiler` interleaves the two,
so the simulated schedule is *independent* of how ``apply`` is built.
That independence is what lets the planner's cost rule pick between two
compilation modes per pipeline without ever perturbing a figure:

* **fused** (``fuse=True``): predicates and projections bind once into
  specialised row closures (inlined column indices, captured constants)
  and run via list comprehensions -- the hot path.
* **interpreted** (``fuse=False``): the reference semantics, walking the
  expression tree per row with no pre-binding -- cheaper to set up, and
  what the property tests compare the fused mode against row for row
  under varying batch boundaries.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.relational.expressions import (
    _ARITH_OPS,
    _CMP_OPS,
    And,
    Arith,
    Between,
    Cmp,
    Col,
    Const,
    Expr,
    If,
    InList,
    Like,
    Not,
    Or,
)
from repro.relational.plans import Distinct, Filter, Limit, PlanNode, Project
from repro.relational.schema import Column, Schema

__all__ = [
    "Stage",
    "FilterStage",
    "ProjectStage",
    "LimitStage",
    "DistinctStage",
    "SemiProbeStage",
    "OuterProbeStage",
    "eval_expr",
    "build_stage",
    "compile_chain",
    "chain_output_schema",
    "push_batches",
]


# ---------------------------------------------------------------------------
# Interpreted expression evaluation (the unfused reference)
# ---------------------------------------------------------------------------
def eval_expr(expr: Expr, row: tuple, schema: Schema) -> Any:
    """Evaluate *expr* on *row* by walking the tree -- no pre-binding.

    This is the semantic reference the fused closures are differential-
    tested against; it deliberately re-resolves column indices and
    operator functions on every call.
    """
    if isinstance(expr, Col):
        return row[schema.index_of(expr.name)]
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Cmp):
        fn = _CMP_OPS[expr.op]
        return fn(
            eval_expr(expr.left, row, schema),
            eval_expr(expr.right, row, schema),
        )
    if isinstance(expr, Arith):
        fn = _ARITH_OPS[expr.op]
        return fn(
            eval_expr(expr.left, row, schema),
            eval_expr(expr.right, row, schema),
        )
    if isinstance(expr, And):
        return all(bool(eval_expr(t, row, schema)) for t in expr.terms)
    if isinstance(expr, Or):
        return any(bool(eval_expr(t, row, schema)) for t in expr.terms)
    if isinstance(expr, Not):
        return not eval_expr(expr.term, row, schema)
    if isinstance(expr, Between):
        return expr.lo <= eval_expr(expr.expr, row, schema) <= expr.hi
    if isinstance(expr, InList):
        return eval_expr(expr.expr, row, schema) in expr.values
    if isinstance(expr, Like):
        value = eval_expr(expr.expr, row, schema)
        pattern = expr.pattern
        if pattern.startswith("%") and pattern.endswith("%") and len(pattern) > 1:
            return pattern[1:-1] in value
        if pattern.endswith("%"):
            return value.startswith(pattern[:-1])
        if pattern.startswith("%"):
            return value.endswith(pattern[1:])
        return value == pattern
    if isinstance(expr, If):
        if eval_expr(expr.cond, row, schema):
            return eval_expr(expr.then, row, schema)
        return eval_expr(expr.otherwise, row, schema)
    raise TypeError(f"cannot interpret expression {expr!r}")


# ---------------------------------------------------------------------------
# Source-level fusion: expression trees compiled to flat Python code
# ---------------------------------------------------------------------------
# ``Expr.bind`` produces one closure per tree node, so evaluating the
# q6 predicate costs ~5 Python frames per row.  The generators below
# instead render the tree as a single Python expression string (column
# refs become ``row[i]`` tuple indexing, constants become literals) and
# ``eval`` it into ONE closure -- or, better, straight into a whole-batch
# list comprehension, so a scan filters a page in a single frame.
#
# Value-for-value parity with ``bind`` is load-bearing (the property
# tests compare row for row): comparisons/arith map to the same Python
# operators ``_CMP_OPS``/``_ARITH_OPS`` name; ``and``/``or`` chains get a
# ``bool()`` wrapper only in *value* position (bind always returns bool
# there) and run bare in ``if`` position, where only truthiness matters;
# Between/Like/If mirror their bind closures shape for shape.  Constants
# that have no exact literal spelling (NaN, infinities, rich objects,
# IN-list sets) are passed by reference through the eval namespace
# instead of being spelled inline.


class _Unsupported(Exception):
    """Raised when a tree has no flat-source rendering; callers fall
    back to the bound-closure path."""


def _const_src(value: Any, env: dict) -> str:
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return _env_src(value, env)
        return repr(value)
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    return _env_src(value, env)


def _env_src(value: Any, env: dict) -> str:
    name = f"_c{len(env)}"
    env[name] = value
    return name


def _expr_src(expr: Expr, schema: Schema, env: dict, cond: bool) -> str:
    """Render *expr* as a Python expression over the free variable
    ``row``.  ``cond`` marks boolean (``if``) position, where bind's
    ``bool()`` normalisation of and/or chains can be elided."""
    if isinstance(expr, Col):
        return f"row[{schema.index_of(expr.name)}]"
    if isinstance(expr, Const):
        return _const_src(expr.value, env)
    if isinstance(expr, Cmp):
        left = _expr_src(expr.left, schema, env, False)
        right = _expr_src(expr.right, schema, env, False)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, Arith):
        left = _expr_src(expr.left, schema, env, False)
        right = _expr_src(expr.right, schema, env, False)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, (And, Or)):
        joiner = " and " if isinstance(expr, And) else " or "
        inner = joiner.join(
            _expr_src(t, schema, env, cond) for t in expr.terms
        )
        if cond and len(expr.terms) > 1:
            return f"({inner})"
        return f"bool({inner})"
    if isinstance(expr, Not):
        return f"(not {_expr_src(expr.term, schema, env, True)})"
    if isinstance(expr, Between):
        lo = _const_src(expr.lo, env)
        hi = _const_src(expr.hi, env)
        mid = _expr_src(expr.expr, schema, env, False)
        return f"({lo} <= {mid} <= {hi})"
    if isinstance(expr, InList):
        value = _expr_src(expr.expr, schema, env, False)
        return f"({value} in {_env_src(expr.values, env)})"
    if isinstance(expr, Like):
        value = _expr_src(expr.expr, schema, env, False)
        pattern = expr.pattern
        if (
            pattern.startswith("%")
            and pattern.endswith("%")
            and len(pattern) > 1
        ):
            return f"({pattern[1:-1]!r} in {value})"
        if pattern.endswith("%"):
            return f"{value}.startswith({pattern[:-1]!r})"
        if pattern.startswith("%"):
            return f"{value}.endswith({pattern[1:]!r})"
        return f"({value} == {pattern!r})"
    if isinstance(expr, If):
        then = _expr_src(expr.then, schema, env, False)
        test = _expr_src(expr.cond, schema, env, True)
        other = _expr_src(expr.otherwise, schema, env, False)
        return f"({then} if {test} else {other})"
    raise _Unsupported(type(expr).__name__)


def _tuple_src(parts: Sequence[str]) -> str:
    return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"


#: Source -> code object.  ``compile`` dominates specialisation cost
#: (~2ms a call) and the same few sources recur on every cell of a
#: figure grid, so code objects are cached process-wide; each ``eval``
#: still binds a fresh ``env``, so per-plan constants stay per-closure.
_code_cache: dict = {}


def _evaluate(src: str, env: dict):
    code = _code_cache.get(src)
    if code is None:
        # Designated impurity: a deterministic memo -- the cached code
        # object is a pure function of `src`, so cell results cannot
        # depend on whether the cache was warm.
        code = _code_cache[src] = compile(src, "<fused>", "eval")  # simlint: disable=IPR201
    return eval(code, env)


def gen_row_fn(expr: Expr, schema: Schema):
    """``row -> value`` as a single generated closure, or None."""
    env: dict = {}
    try:
        src = _expr_src(expr, schema, env, False)
    except _Unsupported:
        return None
    return _evaluate(f"lambda row: {src}", env)


def gen_filter(predicate: Expr, schema: Schema):
    """``batch -> surviving rows`` as one comprehension, or None."""
    env: dict = {}
    try:
        src = _expr_src(predicate, schema, env, True)
    except _Unsupported:
        return None
    return _evaluate(f"lambda rows: [row for row in rows if {src}]", env)


def gen_project_batch(exprs: Sequence[Expr], schema: Schema):
    """``batch -> [tuple(e(row)...)]`` as one comprehension, or None."""
    env: dict = {}
    try:
        parts = [_expr_src(e, schema, env, False) for e in exprs]
    except _Unsupported:
        return None
    return _evaluate(f"lambda rows: [{_tuple_src(parts)} for row in rows]", env)


def gen_scan_batch(
    predicate: Optional[Expr],
    project: Optional[Sequence[str]],
    schema: Schema,
):
    """Fused scan post-processing: filter + column projection in one
    comprehension (``rows -> [projected for row in rows if pred]``).
    Returns None when there is nothing to fuse or the predicate has no
    flat rendering."""
    env: dict = {}
    if predicate is not None:
        try:
            test = _expr_src(predicate, schema, env, True)
        except _Unsupported:
            return None
    else:
        test = None
    if project is not None:
        out = _tuple_src(
            [f"row[{schema.index_of(n)}]" for n in project]
        )
    elif test is None:
        return None
    else:
        out = "row"
    suffix = f" if {test}]" if test is not None else "]"
    return _evaluate(f"lambda rows: [{out} for row in rows{suffix}", env)


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------
class Stage:
    """One streaming operator compiled into the chain.

    ``cost`` mirrors the iterator reference's CPU charge for the same
    batch; ``apply`` transforms the batch and may return ``[]``.
    ``finished`` turns True only for LIMIT once its quota is emitted,
    telling the driver to stop pulling the source.
    """

    __slots__ = ()

    finished = False

    def cost(self, batch: list) -> int:
        return len(batch)

    def apply(self, batch: list) -> list:
        raise NotImplementedError


class FilterStage(Stage):
    """Row selection; charges one tuple per input row (FilterOp)."""

    __slots__ = ("pred", "batch_fn")

    def __init__(self, predicate: Expr, schema: Schema, fuse: bool):
        self.batch_fn = gen_filter(predicate, schema) if fuse else None
        if self.batch_fn is not None:
            self.pred = None
        elif fuse:
            self.pred = predicate.bind(schema)
        else:
            self.pred = lambda row: eval_expr(predicate, row, schema)

    def apply(self, batch):
        if self.batch_fn is not None:
            return self.batch_fn(batch)
        pred = self.pred
        return [row for row in batch if pred(row)]


class ProjectStage(Stage):
    """Column selection / computed expressions (ProjectOp)."""

    __slots__ = ("fn", "batch_fn")

    def __init__(
        self,
        names: Sequence[str],
        exprs: Optional[Sequence[Expr]],
        schema: Schema,
        fuse: bool,
    ):
        self.fn = None
        self.batch_fn = None
        if exprs is None:
            if fuse:
                self.batch_fn = gen_scan_batch(None, names, schema)
            else:
                self.fn = lambda row: tuple(
                    row[schema.index_of(n)] for n in names
                )
        elif fuse:
            self.batch_fn = gen_project_batch(exprs, schema)
            if self.batch_fn is None:
                fns = tuple(e.bind(schema) for e in exprs)
                self.fn = lambda row: tuple(fn(row) for fn in fns)
        else:
            self.fn = lambda row: tuple(
                eval_expr(e, row, schema) for e in exprs
            )

    def apply(self, batch):
        if self.batch_fn is not None:
            return self.batch_fn(batch)
        fn = self.fn
        return [fn(row) for row in batch]


class LimitStage(Stage):
    """OFFSET/LIMIT; charges nothing, like LimitOp."""

    __slots__ = ("skip", "remaining")

    def __init__(self, count: int, offset: int):
        self.skip = offset
        self.remaining = count

    @property
    def finished(self) -> bool:
        return self.remaining == 0

    def cost(self, batch):
        return 0

    def apply(self, batch):
        if self.skip:
            if self.skip >= len(batch):
                self.skip -= len(batch)
                return []
            batch = batch[self.skip:]
            self.skip = 0
        if len(batch) > self.remaining:
            batch = batch[: self.remaining]
        self.remaining -= len(batch)
        return batch


class DistinctStage(Stage):
    """Streaming duplicate elimination, first occurrence wins
    (DistinctOp)."""

    __slots__ = ("seen",)

    def __init__(self):
        self.seen = set()

    def apply(self, batch):
        seen = self.seen
        out = []
        for row in batch:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out


class SemiProbeStage(Stage):
    """Probe half of a semi/anti join, fused into the left pipeline.

    ``keys`` is filled by a build prelude (compiler) before the first
    batch arrives; the stage itself is a pure membership filter, exactly
    SemiJoinOp's probe loop.
    """

    __slots__ = ("keys", "key_fn", "anti")

    def __init__(self, key_fn, anti: bool):
        self.keys = set()
        self.key_fn = key_fn
        self.anti = anti

    def apply(self, batch):
        keys, key_fn = self.keys, self.key_fn
        if self.anti:
            return [row for row in batch if key_fn(row) not in keys]
        return [row for row in batch if key_fn(row) in keys]


class OuterProbeStage(Stage):
    """Probe half of a left-outer hash join, fused into the left
    pipeline; ``table`` is filled by a build prelude.  Unmatched left
    rows pad the right side with Nones (LeftOuterJoinOp)."""

    __slots__ = ("table", "key_fn", "pad")

    def __init__(self, key_fn, right_width: int):
        self.table = {}
        self.key_fn = key_fn
        self.pad = (None,) * right_width

    def apply(self, batch):
        table, key_fn, pad = self.table, self.key_fn, self.pad
        out = []
        for lrow in batch:
            matches = table.get(key_fn(lrow))
            if matches:
                for rrow in matches:
                    out.append(lrow + rrow)
            else:
                out.append(lrow + pad)
        return out


# ---------------------------------------------------------------------------
# Chain compilation
# ---------------------------------------------------------------------------
def _out_schema(op: PlanNode, schema: Schema) -> Schema:
    """Output schema of one streaming *op* given its input *schema*.

    Mirrors ``PlanNode.output_schema`` without needing a catalog (the
    chain already knows its input layout)."""
    if isinstance(op, Project):
        if op.exprs is None:
            return schema.project(op.names)
        return Schema(Column(name, "float") for name in op.names)
    return schema


def build_stage(op: PlanNode, schema: Schema, fuse: bool = True) -> Stage:
    """Compile one streaming plan node into a :class:`Stage`."""
    if isinstance(op, Filter):
        return FilterStage(op.predicate, schema, fuse)
    if isinstance(op, Project):
        return ProjectStage(op.names, op.exprs, schema, fuse)
    if isinstance(op, Limit):
        return LimitStage(op.count, op.offset)
    if isinstance(op, Distinct):
        return DistinctStage()
    raise TypeError(f"{type(op).__name__} is not a streaming operator")


def compile_chain(
    ops: Sequence[PlanNode], schema: Schema, fuse: bool = True
) -> List[Stage]:
    """Compile a run of streaming operators into stages, threading the
    schema through projections."""
    stages = []
    for op in ops:
        stages.append(build_stage(op, schema, fuse))
        schema = _out_schema(op, schema)
    return stages


def chain_output_schema(ops: Sequence[PlanNode], schema: Schema) -> Schema:
    for op in ops:
        schema = _out_schema(op, schema)
    return schema


def push_batches(stages: Sequence[Stage], batches: Iterable[list]) -> list:
    """Drive *batches* through *stages* outside the simulator.

    The sim-free counterpart of the compiler's fused driver loop, used by
    the property tests to compare fused and interpreted chains under
    different batch boundaries."""
    out: list = []
    for batch in batches:
        rows = list(batch)
        for stage in stages:
            rows = stage.apply(rows)
            if not rows:
                break
        out.extend(rows)
        if any(stage.finished for stage in stages):
            break
    return out
