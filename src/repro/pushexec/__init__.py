"""repro.pushexec -- the push-based fused execution backend.

The third engine, next to the pull-based
:class:`~repro.baseline.engine.IteratorEngine` and the packet-based
:class:`~repro.engine.qpipe.QPipeEngine`.  Operator chains are compiled
into fused push pipelines (:mod:`repro.pushexec.fusion`,
:mod:`repro.pushexec.compiler`) that move whole tuple batches between
pipeline breakers in a single coroutine frame, instead of pulling every
batch through a stack of nested ``yield from`` iterators or routing it
through per-operator packet channels.

The backend's load-bearing property is *virtual-cost equivalence*: a
compiled pipeline issues the exact storage-manager calls and CPU
charges, in the exact order, that the iterator reference issues for the
same plan (see :mod:`repro.pushexec.compiler`).  Every figure value the
iterator engine produces is therefore reproduced bit-for-bit; only the
host wall-clock spent simulating it shrinks.
"""

from repro.pushexec.engine import PushEngine
from repro.pushexec.compiler import compile_plan

__all__ = ["PushEngine", "compile_plan"]
