"""The push-based fused engine.

Drop-in interface-compatible with
:class:`~repro.baseline.engine.IteratorEngine`: same constructor shape,
same ``execute`` coroutine contract, same
:class:`~repro.results.QueryResult`.  Internally it compiles the plan
into push pipelines (:mod:`repro.pushexec.compiler`) after asking the
planner's cost rule (:func:`repro.sql.planner.plan_pipelines`) how each
pipeline should be specialised.

Because the compiled pipelines replay the iterator operators' exact
virtual-cost schedule, this engine is observationally identical to the
iterator engine inside the simulation -- same disk reads, same CPU
charges, same virtual timestamps -- while crossing far fewer host
coroutine frames per batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.baseline.operators import ExecContext
from repro.hw.host import Host
from repro.pushexec.compiler import compile_plan, pull_batch
from repro.relational.plans import PlanNode
from repro.results import QueryResult
from repro.sql.planner import plan_pipelines
from repro.storage.manager import StorageManager


@dataclass
class PushEngine:
    """Push-based engine over a shared storage manager.

    Args:
        sm: the storage manager (shared across queries).
        work_mem_tuples: per-query memory budget, in tuples.
        name: label for reports and lock ownership.
    """

    sm: StorageManager
    work_mem_tuples: int = 50_000
    name: str = "pushed"
    _next_query_id: int = field(default=0, repr=False)

    @property
    def host(self) -> Host:
        return self.sm.host

    @property
    def sim(self):
        return self.sm.sim

    def execute(self, plan: PlanNode, query_id: Optional[int] = None) -> Generator:
        """Coroutine: run *plan* to completion; returns a QueryResult."""
        if query_id is None:
            self._next_query_id += 1
            query_id = self._next_query_id
        submitted = self.sim.now
        ctx = ExecContext(
            sm=self.sm,
            host=self.host,
            work_mem_tuples=self.work_mem_tuples,
            owner=("q", self.name, query_id),
        )
        choices = plan_pipelines(
            plan, self.sm.catalog, self.work_mem_tuples
        )
        pipeline = compile_plan(plan, ctx, choices)
        gen = pipeline.generator()
        started = self.sim.now
        rows: List[tuple] = []
        while True:
            batch = yield from pull_batch(gen)
            if batch is None:
                break
            rows.extend(batch)
        return QueryResult(
            query_id=query_id,
            rows=rows,
            submitted_at=submitted,
            started_at=started,
            finished_at=self.sim.now,
        )

    def run_query(self, plan: PlanNode) -> List[tuple]:
        """Convenience: spawn, run the clock, return the rows (tests)."""
        proc = self.sim.spawn(self.execute(plan), name="query")
        self.sim.run()
        return proc.value.rows
