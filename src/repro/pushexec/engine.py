"""The push-based fused engine.

Drop-in interface-compatible with
:class:`~repro.baseline.engine.IteratorEngine`: same constructor shape,
same ``execute`` coroutine contract, same
:class:`~repro.results.QueryResult`.  Internally it compiles the plan
into push pipelines (:mod:`repro.pushexec.compiler`) after asking the
planner's cost rule (:func:`repro.sql.planner.plan_pipelines`) how each
pipeline should be specialised.

Because the compiled pipelines replay the iterator operators' exact
virtual-cost schedule, this engine is observationally identical to the
iterator engine inside the simulation -- same disk reads, same CPU
charges, same virtual timestamps -- while crossing far fewer host
coroutine frames per batch.

Fault handling mirrors the packet engine's contract: running queries are
registered in ``_active`` (so the fault injector's ``crash_query``
channel can target them), an abort interrupts the driving process, and
the teardown path closes the pipeline generators, drops any live spill
files and sweeps the query's locks -- pin/lock balance holds after any
injected fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.baseline.operators import ExecContext
from repro.faults.errors import QueryAborted
from repro.hw.host import Host
from repro.pushexec.compiler import compile_plan, pull_batch
from repro.relational.plans import PlanNode
from repro.results import QueryResult
from repro.sim.errors import Interrupted
from repro.sql.planner import plan_pipelines
from repro.storage.manager import StorageManager


@dataclass
class _PushQuery:
    """Abort-state handle for one in-flight pushed query."""

    query_id: int
    ctx: ExecContext
    proc: Any = None
    aborted: bool = False
    abort_reason: Optional[str] = None
    failure: Optional[BaseException] = None


@dataclass
class PushEngine:
    """Push-based engine over a shared storage manager.

    Args:
        sm: the storage manager (shared across queries).
        work_mem_tuples: per-query memory budget, in tuples.
        name: label for reports and lock ownership.
    """

    sm: StorageManager
    work_mem_tuples: int = 50_000
    name: str = "pushed"
    _next_query_id: int = field(default=0, repr=False)
    _active: Dict[int, _PushQuery] = field(default_factory=dict, repr=False)
    active_queries: int = 0
    queries_completed: int = 0
    queries_aborted: int = 0

    @property
    def host(self) -> Host:
        return self.sm.host

    @property
    def sim(self):
        return self.sm.sim

    def execute(
        self,
        plan: PlanNode,
        query_id: Optional[int] = None,
        lineage=None,
    ) -> Generator:
        """Coroutine: run *plan* to completion; returns a QueryResult."""
        if query_id is None:
            self._next_query_id += 1
            query_id = self._next_query_id
        submitted = self.sim.now
        ctx = ExecContext(
            sm=self.sm,
            host=self.host,
            work_mem_tuples=self.work_mem_tuples,
            owner=("q", self.name, query_id),
            lineage=lineage,
        )
        choices = plan_pipelines(
            plan, self.sm.catalog, self.work_mem_tuples
        )
        pipeline = compile_plan(plan, ctx, choices)
        gen = pipeline.generator()
        handle = _PushQuery(
            query_id=query_id, ctx=ctx, proc=self.sim.active_process
        )
        self.active_queries += 1
        self._active[query_id] = handle
        started = self.sim.now
        rows: List[tuple] = []
        try:
            while True:
                batch = yield from pull_batch(gen)
                if batch is None:
                    break
                rows.extend(batch)
                if lineage is not None:
                    yield from lineage.on_root_batch(batch)
        except BaseException as exc:
            # The interrupt/error already unwound the pipeline's own
            # yield-from chain (running its finally blocks); close() is
            # belt-and-suspenders for generators parked between pulls.
            gen.close()
            if handle.aborted and isinstance(exc, Interrupted):
                self.queries_aborted += 1
                raise handle.failure or QueryAborted(
                    query_id, handle.abort_reason or "aborted"
                ) from None
            raise
        finally:
            self._active.pop(query_id, None)
            self.active_queries -= 1
            self.queries_completed += 1
            for temp in list(ctx.temp_files):
                ctx.drop_temp(temp)
            self.sm.locks.release_all(ctx.owner)
        return QueryResult(
            query_id=query_id,
            rows=rows,
            submitted_at=submitted,
            started_at=started,
            finished_at=self.sim.now,
        )

    # ------------------------------------------------------------------
    def abort_query(self, handle: _PushQuery, reason: str,
                    failure: Optional[BaseException] = None) -> None:
        """Abort one in-flight query (fault-injector entry point):
        exactly-once; interrupts the driving process, whose unwind runs
        the pipeline teardown in ``execute``'s except/finally."""
        if handle.aborted:
            return
        handle.aborted = True
        handle.abort_reason = reason
        if failure is not None:
            handle.failure = failure
        self.sim.tracer.query_abort(handle, reason)
        if handle.proc is not None and handle.proc.alive:
            handle.proc.interrupt(reason)

    def run_query(self, plan: PlanNode) -> List[tuple]:
        """Convenience: spawn, run the clock, return the rows (tests)."""
        proc = self.sim.spawn(self.execute(plan), name="query")
        self.sim.run()
        return proc.value.rows
