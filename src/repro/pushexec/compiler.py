"""Plan trees compiled to push-based pipelines.

A plan is decomposed at its *pipeline breakers* (sort, aggregate, group
by, hash/merge/NL join build) into pipelines: one batch *source* plus a
chain of fused streaming stages (:mod:`repro.pushexec.fusion`).  Each
pipeline compiles to a single generator that pushes row batches upward
as ``(_BATCH, rows)`` markers interleaved with simulation events; a
breaker consumes its child pipeline through :func:`pull_batch`, which
forwards events both ways.  Where the iterator engine suspends one
coroutine frame per operator per batch, a compiled pipeline crosses one
frame per *breaker* -- the per-operator interface cost (the Channel hop
in QPipe, the ``yield from`` hop here) is fused away, per Shaikhha et
al.'s push-based loop fusion.

Equivalence contract (load-bearing -- the byte-identical-figure tests
enforce it): for every plan, a compiled pipeline issues the **exact
sequence** of storage-manager calls and CPU charges that the reference
iterator operators in :mod:`repro.baseline.operators` issue.  Each
source/breaker below is a transliteration of the corresponding operator
with the same charge points, the same batch boundaries, the same spill
thresholds and the same temp-file lifetimes.  The planner's fuse /
materialize choices (:func:`repro.sql.planner.plan_pipelines`) only ever
select *how the host computes* a batch, never what the simulation sees;
runtime guards (actual row counts) make spill decisions, exactly like
the iterator, so a mis-estimate costs host-side specialisation, never
correctness.
"""

from __future__ import annotations

import heapq
import math
from itertools import count
from operator import itemgetter
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.baseline.operators import ExecContext, SortOp, _Neg
from repro.pushexec import fusion
from repro.relational.expressions import Col, bind_aggregates
from repro.relational.plans import (
    Aggregate,
    AntiJoin,
    DeleteRows,
    Distinct,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    InsertRows,
    LeftOuterJoin,
    Limit,
    MergeJoin,
    NLJoin,
    PlanNode,
    Project,
    SemiJoin,
    Sort,
    TableScan,
    UpdateRows,
)
from repro.storage.locks import LockMode
from repro.storage.page import RID

__all__ = ["Pipeline", "compile_plan", "pull_batch"]

#: Marker tag: pipelines yield ``(_BATCH, rows)`` between simulation
#: events.  A unique sentinel object, so no sim event can collide.
_BATCH = object()

#: Circular-scan stream identities.  The iterator reference uses
#: ``id(self)`` of the live scan op; the pool only ever compares streams
#: for (in)equality, so any value that is unique per scan execution is
#: equivalent -- except that a *recycled* ``id()`` can accidentally match
#: a finished scan's leftover ring entries and turn its misses into
#: hits.  A process-global counter can never collide with a previous
#: scan, which is exactly the (observed) behaviour of the reference:
#: live op objects always have distinct ids.
_stream_ids = count(1)


def _next_stream() -> Tuple[str, int]:
    return ("pushscan", next(_stream_ids))


def pull_batch(gen) -> Generator:
    """Coroutine: resume *gen* to its next batch marker.

    Forwards every simulation event (and the kernel's replies) between
    *gen* and the caller's scheduler; returns the marker's rows, or
    ``None`` once *gen* is exhausted.  The push-side counterpart of
    ``Operator.next_batch``.
    """
    try:
        item = next(gen)
    except StopIteration:
        return None
    while True:
        if type(item) is tuple and item and item[0] is _BATCH:
            return item[1]
        value = yield item
        try:
            item = gen.send(value)
        except StopIteration:
            return None


class Pipeline:
    """One compiled pipeline: a source plus fused streaming stages.

    ``generator()`` instantiates the pipeline as a single coroutine.
    Stages hold per-query state (limit counters, distinct sets), so a
    pipeline is instantiated exactly once per execution.
    """

    __slots__ = ("ctx", "source_factory", "stages", "preludes", "schema")

    def __init__(self, ctx, source_factory, stages, preludes, schema):
        self.ctx = ctx
        self.source_factory = source_factory
        self.stages = list(stages)
        self.preludes = list(preludes)
        self.schema = schema

    def generator(self):
        if not self.stages and not self.preludes:
            return self.source_factory()
        return _drive(self.ctx, self.preludes, self.source_factory, self.stages)


def _drive(ctx, preludes, source_factory, stages):
    """The fused driver loop: one frame for the whole stage chain.

    Per source batch this replays the iterator chain's schedule: each
    stage's CPU charge, then its transformation, skipping the rest of
    the chain when a batch empties (the iterator's internal re-pull
    loops), and stopping the source once a LIMIT is satisfied.
    """
    for prelude in preludes:
        yield from prelude()
    limits = [s for s in stages if isinstance(s, fusion.LimitStage)]
    src = source_factory()
    while True:
        batch = yield from pull_batch(src)
        if batch is None:
            return
        survived = True
        for stage in stages:
            tuples = stage.cost(batch)
            if tuples:
                yield from ctx.cpu(tuples)
            batch = stage.apply(batch)
            if not batch:
                survived = False
                break
        if survived:
            yield (_BATCH, batch)
        if limits and any(stage.finished for stage in limits):
            return


# ---------------------------------------------------------------------------
# Sources: leaves (ScanOp / IndexScanOp transliterations)
# ---------------------------------------------------------------------------
def _scan_source(ctx: ExecContext, plan: TableScan) -> Callable:
    base = ctx.sm.catalog.table_schema(plan.table)
    # The hot path: predicate + projection fused into one generated
    # whole-batch comprehension (no per-row closure calls at all).
    fused = fusion.gen_scan_batch(plan.predicate, plan.project, base)
    pred = proj = None
    if fused is None:
        pred = plan.predicate.bind(base) if plan.predicate else None
        proj = (
            base.projector(plan.project)
            if plan.project is not None
            else None
        )
    num_pages = ctx.sm.num_pages(plan.table)
    # Recovery resume: visit exactly the unconsumed page suffix in
    # wrapped order; a fresh scan visits every page from 0.
    if plan.resume is None:
        start_page, page_count = 0, num_pages
    else:
        start_page, page_count = plan.resume

    def run():
        # A fresh counter value stands in for the iterator op's
        # id(self) as the circular-scan stream identity (see
        # _next_stream on why not id()).
        stream = _next_stream()
        for i in range(page_count):
            page_no = (start_page + i) % num_pages
            page = yield from ctx.sm.read_table_page(
                plan.table, page_no, scan=True, stream=stream
            )
            rows = page.rows()
            yield from ctx.cpu(len(rows))
            if fused is not None:
                rows = fused(rows)
            else:
                if pred is not None:
                    rows = [row for row in rows if pred(row)]
                if proj is not None:
                    rows = [proj(row) for row in rows]
            if ctx.lineage is not None:
                ctx.lineage.scan_page(
                    stream, plan.table, page_no, len(rows), num_pages
                )
            if rows:
                yield (_BATCH, rows)

    return run


def _index_source(ctx: ExecContext, plan: IndexScan) -> Callable:
    base = ctx.sm.catalog.table_schema(plan.table)
    info = ctx.sm.catalog.index(plan.table, plan.index)
    key_fn = ctx.sm._key_fn(base, info.key_columns)
    # Fused post-processing runs after the key-range filter, matching
    # the pred-then-proj ordering below.
    fused = fusion.gen_scan_batch(plan.predicate, plan.project, base)
    pred = proj = None
    if fused is None:
        pred = plan.predicate.bind(base) if plan.predicate else None
        proj = (
            base.projector(plan.project)
            if plan.project is not None
            else None
        )

    if info.clustered:

        def run():
            stream = _next_stream()
            sm = ctx.sm
            page_no = yield from sm.clustered_start_page(
                plan.table, plan.index, plan.lo
            )
            num_pages = sm.num_pages(plan.table)
            while page_no < num_pages:
                page = yield from sm.read_table_page(
                    plan.table, page_no, scan=True, stream=stream
                )
                page_no += 1
                rows = page.rows()
                yield from ctx.cpu(len(rows))
                if (
                    plan.hi is not None
                    and rows
                    and key_fn(rows[0]) > plan.hi
                ):
                    return
                if plan.lo is not None or plan.hi is not None:
                    rows = [
                        row
                        for row in rows
                        if (plan.lo is None or key_fn(row) >= plan.lo)
                        and (plan.hi is None or key_fn(row) <= plan.hi)
                    ]
                if fused is not None:
                    rows = fused(rows)
                else:
                    if pred is not None:
                        rows = [row for row in rows if pred(row)]
                    if proj is not None:
                        rows = [proj(row) for row in rows]
                if rows:
                    yield (_BATCH, rows)
                    # The iterator re-reads the page count at each batch
                    # boundary; match it so concurrent growth behaves
                    # identically.
                    num_pages = sm.num_pages(plan.table)

        return run

    def run():
        stream = _next_stream()
        pairs = yield from ctx.sm.index_range(
            plan.table, plan.index, plan.lo, plan.hi
        )
        rids = [rid for _key, rid in pairs]
        if not plan.ordered:
            rids.sort()  # ascending page number: one visit per page
        cursor = 0
        out: List[tuple] = []
        while cursor < len(rids):
            block = rids[cursor].block_no
            page = yield from ctx.sm.read_table_page(
                plan.table, block, scan=True, stream=stream
            )
            group: List[tuple] = []
            while cursor < len(rids) and rids[cursor].block_no == block:
                row = page.get(rids[cursor].slot)
                if row is not None:
                    group.append(row)
                cursor += 1
            yield from ctx.cpu(len(group))
            if fused is not None:
                group = fused(group)
            else:
                if pred is not None:
                    group = [row for row in group if pred(row)]
                if proj is not None:
                    group = [proj(row) for row in group]
            out.extend(group)
            if out:
                yield (_BATCH, out)
                out = []

    return run


# ---------------------------------------------------------------------------
# Breakers (SortOp / joins / aggregation transliterations)
# ---------------------------------------------------------------------------
def _sort_source(ctx, plan: Sort, child_factory, schema) -> Callable:
    key = schema.projector(plan.keys)
    descending = plan.descending
    row_width = schema.row_width
    sort_factor = ctx.host.config.sort_cpu_factor

    def sort_cost(n):
        comparisons = n * max(1.0, math.log2(max(2, n)))
        yield from ctx.cpu(int(comparisons), factor=sort_factor)

    def spill(rows, runs):
        yield from sort_cost(len(rows))
        rows.sort(key=key, reverse=descending)
        run_file = ctx.track_temp(
            ctx.sm.create_temp_file(row_width, label="sortrun")
        )
        yield from ctx.sm.write_run(run_file, rows)
        runs.append(run_file)

    def run_reader(run_file):
        for block in range(run_file.num_pages):
            page = yield from ctx.sm.read_temp_page(run_file, block)
            for row in page.rows():
                yield ("row", row)

    def rank(row, sign):
        k = key(row)
        if sign == 1:
            return k
        return tuple(_Neg(part) for part in k)

    def merged_rows(runs):
        sign = -1 if descending else 1
        readers = [run_reader(run_file) for run_file in runs]
        heads: List = []
        for i, reader in enumerate(readers):
            row = yield from SortOp._advance(reader)
            if row is not None:
                heads.append((rank(row, sign), i, row))
        heapq.heapify(heads)
        while heads:
            _r, i, row = heapq.heappop(heads)
            yield ("row", row)
            nxt = yield from SortOp._advance(readers[i])
            if nxt is not None:
                heapq.heappush(heads, (rank(nxt, sign), i, nxt))

    def run():
        budget = ctx.work_mem_tuples
        runs: List = []
        buffer: List[tuple] = []
        child = child_factory()
        while True:
            batch = yield from pull_batch(child)
            if batch is None:
                break
            buffer.extend(batch)
            if len(buffer) >= budget:
                yield from spill(buffer, runs)
                buffer = []
        if not runs:
            # In-memory path: one sort charge, the whole result as a
            # single charge-free batch (SortOp's _sorted path).
            yield from sort_cost(len(buffer))
            buffer.sort(key=key, reverse=descending)
            if buffer:
                yield (_BATCH, buffer)
            return
        if buffer:
            yield from spill(buffer, runs)
        merge = merged_rows(runs)
        done = False
        while not done:
            out: List[tuple] = []
            while len(out) < 1024:
                row = yield from SortOp._advance(merge)
                if row is None:
                    done = True
                    for run_file in runs:
                        ctx.drop_temp(run_file)
                    break
                out.append(row)
            if out:
                yield from ctx.cpu(len(out))
                yield (_BATCH, out)

    return run


def _partition(ctx, rows, key, nparts, label):
    """HashJoinOp._partition transliteration (shared by both sides)."""
    buckets: List[List[tuple]] = [[] for _ in range(nparts)]
    for row in rows:
        buckets[hash(key(row)) % nparts].append(row)
    yield from ctx.cpu(len(rows))
    parts = []
    for bucket in buckets:
        part = ctx.track_temp(ctx.sm.create_temp_file(64, label=label))
        yield from ctx.sm.write_run(part, bucket)
        parts.append(part)
    return parts


def _read_part(ctx, part):
    rows: List[tuple] = []
    for block in range(part.num_pages):
        page = yield from ctx.sm.read_temp_page(part, block)
        rows.extend(page.rows())
    return rows


def _join_key(schema, col):
    """Bare-column join key.  The projector's 1-tuple wrapping only
    matters where keys reach output rows, which join keys never do;
    a scalar groups and compares identically at C speed."""
    return itemgetter(schema.index_of(col))


def _hashjoin_source(
    ctx, plan: HashJoin, left_factory, right_factory, lschema, rschema
) -> Callable:
    lkey = _join_key(lschema, plan.left_key)
    rkey = _join_key(rschema, plan.right_key)
    # Partition fan-out IS simulated behavior (it decides temp-file
    # page counts), so the grace path hashes the same 1-tuple keys the
    # iterator hashes; the bare-column keys above only ever feed
    # host-side dict lookups.
    lkey_part = lschema.projector([plan.left_key])
    rkey_part = rschema.projector([plan.right_key])

    def run():
        budget = ctx.work_mem_tuples
        table: Dict[Any, List[tuple]] = {}
        count = 0
        overflow: List[tuple] = []
        partitioned = False
        left = left_factory()
        while True:
            batch = yield from pull_batch(left)
            if batch is None:
                break
            yield from ctx.cpu(len(batch))
            count += len(batch)
            if count > budget and not partitioned:
                partitioned = True
            if partitioned:
                overflow.extend(batch)
            else:
                for row in batch:
                    table.setdefault(lkey(row), []).append(row)
        right = right_factory()
        if not partitioned:
            while True:
                batch = yield from pull_batch(right)
                if batch is None:
                    return
                yield from ctx.cpu(len(batch))
                out: List[tuple] = []
                for rrow in batch:
                    for lrow in table.get(rkey(rrow), ()):
                        out.append(lrow + rrow)
                if out:
                    yield (_BATCH, out)
        # Grace path: spill both sides, join partition pairs in memory.
        all_rows = [row for rows in table.values() for row in rows]
        all_rows.extend(overflow)
        nparts = max(
            2, -(-len(all_rows) // max(1, ctx.work_mem_tuples // 2))
        )
        lparts = yield from _partition(ctx, all_rows, lkey_part, nparts, "hjL")
        rrows: List[tuple] = []
        while True:
            batch = yield from pull_batch(right)
            if batch is None:
                break
            rrows.extend(batch)
        rparts = yield from _partition(ctx, rrows, rkey_part, nparts, "hjR")
        for p in range(nparts):
            lrows = yield from _read_part(ctx, lparts[p])
            prows = yield from _read_part(ctx, rparts[p])
            yield from ctx.cpu(len(lrows) + len(prows))
            ptable: Dict[Any, List[tuple]] = {}
            for row in lrows:
                ptable.setdefault(lkey(row), []).append(row)
            pending: List[tuple] = []
            for rrow in prows:
                for lrow in ptable.get(rkey(rrow), ()):
                    pending.append(lrow + rrow)
            for i in range(0, len(pending), 1024):
                yield (_BATCH, pending[i : i + 1024])
        for part in lparts + rparts:
            ctx.drop_temp(part)

    return run


def _mergejoin_source(
    ctx, plan: MergeJoin, left_factory, right_factory, lschema, rschema
) -> Callable:
    lkey = _join_key(lschema, plan.left_key)
    rkey = _join_key(rschema, plan.right_key)

    def run():
        gens = {"l": left_factory(), "r": right_factory()}
        bufs: Dict[str, List[tuple]] = {"l": [], "r": []}
        ends = {"l": False, "r": False}

        def fill(side):
            buf = bufs[side]
            while not buf and not ends[side]:
                batch = yield from pull_batch(gens[side])
                if batch is None:
                    ends[side] = True
                else:
                    buf.extend(batch)

        def take_group(side, key, value):
            buf = bufs[side]
            group: List[tuple] = []
            while True:
                while buf and key(buf[0]) == value:
                    group.append(buf.pop(0))
                if buf or ends[side]:
                    return group
                yield from fill(side)
                if not buf:
                    return group

        while True:
            yield from fill("l")
            yield from fill("r")
            lbuf, rbuf = bufs["l"], bufs["r"]
            if (ends["l"] and not lbuf) or (ends["r"] and not rbuf):
                return
            lk = lkey(lbuf[0])
            rk = rkey(rbuf[0])
            if lk < rk:
                lbuf.pop(0)
            elif rk < lk:
                rbuf.pop(0)
            else:
                lgroup = yield from take_group("l", lkey, lk)
                rgroup = yield from take_group("r", rkey, rk)
                yield from ctx.cpu(len(lgroup) * len(rgroup))
                out: List[tuple] = []
                for lrow in lgroup:
                    for rrow in rgroup:
                        out.append(lrow + rrow)
                if out:
                    yield (_BATCH, out)

    return run


def _nljoin_source(
    ctx, plan: NLJoin, left_factory, right_factory, out_schema, right_width
) -> Callable:
    pred = fusion.gen_row_fn(plan.predicate, out_schema)
    if pred is None:
        pred = plan.predicate.bind(out_schema)

    def run():
        right = right_factory()
        rrows: List[tuple] = []
        while True:
            batch = yield from pull_batch(right)
            if batch is None:
                break
            rrows.extend(batch)
        mat = ctx.track_temp(
            ctx.sm.create_temp_file(right_width, label="nlj")
        )
        yield from ctx.sm.write_run(mat, rrows)
        left = left_factory()
        while True:
            batch = yield from pull_batch(left)
            if batch is None:
                ctx.drop_temp(mat)
                return
            out: List[tuple] = []
            for block in range(mat.num_pages):
                page = yield from ctx.sm.read_temp_page(mat, block)
                prows = page.rows()
                yield from ctx.cpu(len(batch) * len(prows))
                for lrow in batch:
                    for rrow in prows:
                        joined = lrow + rrow
                        if pred(joined):
                            out.append(joined)
            if out:
                yield (_BATCH, out)

    return run


def _bind_agg_fns(aggs, schema):
    """bind_aggregates, with plain column references specialised to
    ``operator.itemgetter`` (same value, C-speed under ``map``) and
    richer expressions to one generated closure (same operators applied
    in the same order as the bound tree, so identical values)."""
    specs, fns = bind_aggregates(aggs, schema)
    fast = []
    for spec, fn in zip(specs, fns):
        if type(spec.expr) is Col:
            fast.append(itemgetter(schema.index_of(spec.expr.name)))
            continue
        gen = (
            fusion.gen_row_fn(spec.expr, schema)
            if spec.expr is not None
            else None
        )
        fast.append(gen if gen is not None else fn)
    return specs, fast


def _batch_updaters(specs, fns):
    """One ``update(state, batch)`` closure per aggregate, equal bit for
    bit to the per-row ``AggState.add`` loop the iterator runs.

    The float-sensitive case is sum/avg: ``sum(it, start)`` performs the
    exact left fold ``for v in it: start += v`` performs, so running
    totals round identically; count is integer arithmetic and min/max
    are exact comparisons (``min``/``max`` keep the first extremum, like
    the per-row compare).  Only the dispatch moves from per-row Python
    to per-batch C.
    """
    updaters = []
    for spec, fn in zip(specs, fns):
        func = spec.func
        if func == "count":
            def update(state, batch, fn=fn):
                state.count += len(batch)
        elif func in ("sum", "avg"):
            def update(state, batch, fn=fn):
                state.count += len(batch)
                state.total = sum(map(fn, batch), state.total)
        elif func == "min":
            def update(state, batch, fn=fn):
                state.count += len(batch)
                low = min(map(fn, batch))
                if state.best is None or low < state.best:
                    state.best = low
        elif func == "max":
            def update(state, batch, fn=fn):
                state.count += len(batch)
                high = max(map(fn, batch))
                if state.best is None or high > state.best:
                    state.best = high
        else:  # unknown func: fall back to the reference per-row path
            def update(state, batch, fn=fn):
                for row in batch:
                    state.add(fn(row))
        updaters.append(update)
    return updaters


def _aggregate_source(ctx, plan: Aggregate, child_factory, in_schema) -> Callable:
    specs, fns = _bind_agg_fns(plan.aggs, in_schema)
    updaters = _batch_updaters(specs, fns)

    def run():
        states = [spec.make_state() for spec in specs]
        child = child_factory()
        consumed = 0
        batches = 0
        while True:
            batch = yield from pull_batch(child)
            if batch is None:
                break
            yield from ctx.cpu(len(batch) * len(states))
            if batch:
                for state, update in zip(states, updaters):
                    update(state, batch)
            consumed += len(batch)
            batches += 1
            if ctx.lineage is not None and batches % 8 == 0:
                yield from ctx.lineage.checkpoint(
                    consumed,
                    [(s.count, s.total, s.best) for s in states],
                )
        yield (_BATCH, [tuple(state.result() for state in states)])

    return run


def _groupby_source(ctx, plan: GroupBy, child_factory, in_schema) -> Callable:
    specs, fns = _bind_agg_fns(plan.aggs, in_schema)
    updaters = _batch_updaters(specs, fns)
    # Group keys reach the output rows, so they stay tuples -- but they
    # are computed per batch in one generated comprehension instead of
    # one projector call per row.
    group_batch = fusion.gen_scan_batch(None, plan.group_cols, in_schema)

    def run():
        groups: Dict[tuple, list] = {}
        child = child_factory()
        while True:
            batch = yield from pull_batch(child)
            if batch is None:
                break
            yield from ctx.cpu(len(batch) * max(1, len(specs)))
            # Split the batch by group key (rows keep encounter order,
            # so each state sees the same value sequence as the
            # iterator's per-row loop), then update per group at batch
            # granularity.
            grouped: Dict[tuple, list] = {}
            for key, row in zip(group_batch(batch), batch):
                rows = grouped.get(key)
                if rows is None:
                    grouped[key] = [row]
                else:
                    rows.append(row)
            for key, rows in grouped.items():
                states = groups.get(key)
                if states is None:
                    states = [spec.make_state() for spec in specs]
                    groups[key] = states
                for state, update in zip(states, updaters):
                    update(state, rows)
        result = [
            key + tuple(state.result() for state in states)
            for key, states in sorted(groups.items())
        ]
        for i in range(0, len(result), 1024):
            yield (_BATCH, result[i : i + 1024])

    return run


# ---------------------------------------------------------------------------
# Probe-side builds (preludes fused into the left pipeline)
# ---------------------------------------------------------------------------
def _semi_build(ctx, right_factory, rkey, stage: fusion.SemiProbeStage):
    def build():
        keys = stage.keys
        right = right_factory()
        while True:
            batch = yield from pull_batch(right)
            if batch is None:
                return
            yield from ctx.cpu(len(batch))
            for row in batch:
                keys.add(rkey(row))

    return build


def _outer_build(ctx, right_factory, rkey, stage: fusion.OuterProbeStage):
    def build():
        table = stage.table
        right = right_factory()
        while True:
            batch = yield from pull_batch(right)
            if batch is None:
                return
            yield from ctx.cpu(len(batch))
            for row in batch:
                table.setdefault(rkey(row), []).append(row)

    return build


# ---------------------------------------------------------------------------
# DML sources (InsertOp / UpdateOp / DeleteOp transliterations)
# ---------------------------------------------------------------------------
def _insert_source(ctx, plan: InsertRows) -> Callable:
    def run():
        owner = ctx.owner or _next_stream()
        yield ctx.sm.locks.acquire(owner, plan.table, LockMode.EXCLUSIVE)
        try:
            for row in plan.rows:
                yield from ctx.sm.insert_row(plan.table, row)
        finally:
            ctx.sm.locks.release(owner, plan.table)
        yield (_BATCH, [(len(plan.rows),)])

    return run


def _update_source(ctx, plan: UpdateRows) -> Callable:
    def run():
        owner = ctx.owner or _next_stream()
        table = plan.table
        schema = ctx.sm.catalog.table_schema(table)
        pred = plan.predicate.bind(schema) if plan.predicate else None
        yield ctx.sm.locks.acquire(owner, table, LockMode.EXCLUSIVE)
        changed = 0
        try:
            info = ctx.sm.catalog.table(table)
            for block in range(info.num_pages):
                page = yield from ctx.sm.read_table_page(table, block)
                for slot, row in list(page.items()):
                    if pred is None or pred(row):
                        yield from ctx.sm.update_row(
                            table, RID(block, slot), plan.apply(row)
                        )
                        changed += 1
        finally:
            ctx.sm.locks.release(owner, table)
        yield (_BATCH, [(changed,)])

    return run


def _delete_source(ctx, plan: DeleteRows) -> Callable:
    def run():
        owner = ctx.owner or _next_stream()
        table = plan.table
        schema = ctx.sm.catalog.table_schema(table)
        pred = plan.predicate.bind(schema) if plan.predicate else None
        yield ctx.sm.locks.acquire(owner, table, LockMode.EXCLUSIVE)
        removed = 0
        try:
            info = ctx.sm.catalog.table(table)
            for block in range(info.num_pages):
                page = yield from ctx.sm.read_table_page(table, block)
                for slot, row in list(page.items()):
                    if pred is None or pred(row):
                        yield from ctx.sm.delete_row(table, RID(block, slot))
                        removed += 1
        finally:
            ctx.sm.locks.release(owner, table)
        yield (_BATCH, [(removed,)])

    return run


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------
def compile_plan(
    plan: PlanNode, ctx: ExecContext, choices: Optional[dict] = None
) -> Pipeline:
    """Compile *plan* into a tree of pipelines rooted at one Pipeline.

    *choices* maps plan nodes to the planner's
    :class:`~repro.sql.planner.PipelineChoice` decisions; absent
    entries default to fused compilation.
    """
    if choices is None:
        choices = {}
    return _compile(plan, ctx, choices)


def _fuse_choice(plan, choices) -> bool:
    choice = choices.get(plan)
    return True if choice is None else choice.fuse


def _compile(plan: PlanNode, ctx: ExecContext, choices: dict) -> Pipeline:
    catalog = ctx.sm.catalog
    schema = plan.output_schema(catalog)

    if isinstance(plan, TableScan):
        return Pipeline(ctx, _scan_source(ctx, plan), [], [], schema)
    if isinstance(plan, IndexScan):
        return Pipeline(ctx, _index_source(ctx, plan), [], [], schema)

    if isinstance(plan, (Filter, Project, Limit, Distinct)):
        child = _compile(plan.child, ctx, choices)
        stage = fusion.build_stage(
            plan, child.schema, fuse=_fuse_choice(plan, choices)
        )
        return Pipeline(
            ctx,
            child.source_factory,
            child.stages + [stage],
            child.preludes,
            schema,
        )

    if isinstance(plan, Sort):
        child = _compile(plan.child, ctx, choices)
        source = _sort_source(ctx, plan, child.generator, child.schema)
        return Pipeline(ctx, source, [], [], schema)
    if isinstance(plan, Aggregate):
        child = _compile(plan.child, ctx, choices)
        source = _aggregate_source(ctx, plan, child.generator, child.schema)
        return Pipeline(ctx, source, [], [], schema)
    if isinstance(plan, GroupBy):
        child = _compile(plan.child, ctx, choices)
        source = _groupby_source(ctx, plan, child.generator, child.schema)
        return Pipeline(ctx, source, [], [], schema)

    if isinstance(plan, HashJoin):
        left = _compile(plan.left, ctx, choices)
        right = _compile(plan.right, ctx, choices)
        source = _hashjoin_source(
            ctx, plan, left.generator, right.generator,
            left.schema, right.schema,
        )
        return Pipeline(ctx, source, [], [], schema)
    if isinstance(plan, MergeJoin):
        left = _compile(plan.left, ctx, choices)
        right = _compile(plan.right, ctx, choices)
        source = _mergejoin_source(
            ctx, plan, left.generator, right.generator,
            left.schema, right.schema,
        )
        return Pipeline(ctx, source, [], [], schema)
    if isinstance(plan, NLJoin):
        left = _compile(plan.left, ctx, choices)
        right = _compile(plan.right, ctx, choices)
        source = _nljoin_source(
            ctx, plan, left.generator, right.generator,
            schema, right.schema.row_width,
        )
        return Pipeline(ctx, source, [], [], schema)

    if isinstance(plan, (SemiJoin, AntiJoin)):
        left = _compile(plan.left, ctx, choices)
        right = _compile(plan.right, ctx, choices)
        lkey = _join_key(left.schema, plan.left_key)
        rkey = _join_key(right.schema, plan.right_key)
        stage = fusion.SemiProbeStage(lkey, anti=isinstance(plan, AntiJoin))
        build = _semi_build(ctx, right.generator, rkey, stage)
        # The iterator builds the key set at the *root's* first pull,
        # before anything below the left input runs: outer preludes
        # precede inner ones.
        return Pipeline(
            ctx,
            left.source_factory,
            left.stages + [stage],
            [build] + left.preludes,
            schema,
        )
    if isinstance(plan, LeftOuterJoin):
        left = _compile(plan.left, ctx, choices)
        right = _compile(plan.right, ctx, choices)
        lkey = _join_key(left.schema, plan.left_key)
        rkey = _join_key(right.schema, plan.right_key)
        stage = fusion.OuterProbeStage(lkey, len(right.schema))
        build = _outer_build(ctx, right.generator, rkey, stage)
        return Pipeline(
            ctx,
            left.source_factory,
            left.stages + [stage],
            [build] + left.preludes,
            schema,
        )

    if isinstance(plan, InsertRows):
        return Pipeline(ctx, _insert_source(ctx, plan), [], [], schema)
    if isinstance(plan, UpdateRows):
        return Pipeline(ctx, _update_source(ctx, plan), [], [], schema)
    if isinstance(plan, DeleteRows):
        return Pipeline(ctx, _delete_source(ctx, plan), [], [], schema)

    raise TypeError(f"no push pipeline for {type(plan).__name__}")
